//! The fleet runtime: N device shards behind one priority-aware
//! admission/placement layer.
//!
//! Each [`FleetRuntime`] shard is a full single-board serving stack — a
//! `Platform`, a [`RankMapManager`] (with its own plan cache), and a
//! step-wise [`RuntimeSession`] — interleaved on one global clock. An
//! arriving DNN instance is routed by **predicted potential delta**: for
//! every shard with capacity, the placement layer builds one candidate
//! mapping per component (survivors keep their incumbent placements, the
//! arrival is tried on each component), scores the batch through
//! [`ThroughputOracle::predict_batch`], weighs the per-DNN potentials by
//! the shard's priority vector, and admits onto the shard whose best
//! candidate improves the fleet most. Arrivals whose best predicted
//! potential everywhere falls below the admission floor — or that find
//! every shard at capacity — are **rejected** (spill), and a shard whose
//! mean predicted potential collapses sheds its lowest-priority instance
//! to a healthier shard (**rebalancing**, one migration per event).
//!
//! The candidate batch only *routes*; the shard's own mapper still runs
//! its warm-started search (plan cache and all) once the instance lands,
//! so per-shard mapping quality is exactly the PR 2 serving runtime's.

use crate::load::{FleetEvent, RequestId};
use crate::metrics::{FleetMetrics, LatencyStats, PlacementOutcome, PlacementRecord};
use crate::trace::Trace;
use rankmap_core::dataset::ideal_rates;
use rankmap_core::manager::{ManagerConfig, RankMapManager};
use rankmap_core::oracle::ThroughputOracle;
use rankmap_core::priority::PriorityMode;
use rankmap_core::runtime::{
    ideal_rate_of, priorities_or_uniform, timeline_average_potential, weighted_potential,
    DynamicEvent, DynamicRuntime, GainObjective, InstanceId, RankMapMapper, RuntimeSession,
    TimelinePoint,
};
use rankmap_models::ModelId;
use rankmap_platform::{ComponentId, Platform};
use rankmap_sim::{Mapping, MigrationModel, Workload};
use std::collections::HashMap;
use std::time::Instant;

/// Fleet-wide configuration (per-shard manager settings included).
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Timeline sampling interval of every shard session (seconds).
    pub sample_dt: f64,
    /// Per-shard manager configuration (search budgets, plan-cache
    /// capacity, ...).
    pub manager: ManagerConfig,
    /// Hard per-shard concurrency cap — the admission backstop.
    pub max_per_shard: usize,
    /// Minimum predicted potential an arrival must reach on its best
    /// candidate shard to be admitted; below it the request is rejected.
    pub admission_floor: f64,
    /// Expected residency window handed to shard sessions as the remap
    /// decision's integration horizon (seconds).
    pub decision_window: f64,
    /// A shard whose mean predicted potential falls below this value is a
    /// rebalance candidate.
    pub rebalance_threshold: f64,
    /// Required predicted improvement of the source shard's mean
    /// potential for a rebalance migration to fire.
    pub rebalance_margin: f64,
    /// Remap-gain objective of every shard runtime.
    pub objective: GainObjective,
    /// Migration awareness of every shard runtime.
    pub migration_aware: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            sample_dt: 30.0,
            manager: ManagerConfig {
                mcts_iterations: 400,
                warm_iterations: 150,
                ..Default::default()
            },
            max_per_shard: 5,
            admission_floor: 0.05,
            decision_window: 60.0,
            rebalance_threshold: 0.3,
            rebalance_margin: 0.05,
            objective: GainObjective::default(),
            migration_aware: true,
        }
    }
}

/// One device shard: its mapper (manager + priority mode) and its
/// step-wise serving session.
struct Shard<'p, O: ThroughputOracle> {
    mapper: RankMapMapper<'p, O>,
    session: RuntimeSession<'p>,
    /// Memoized oracle prediction of the current (workload, incumbent)
    /// pair. Placement probes run for *every* offered event against
    /// *every* shard, but a shard's incumbent only changes when its own
    /// `apply` runs — so the prediction is cached here and invalidated on
    /// apply.
    incumbent_prediction: std::cell::RefCell<Option<Vec<f64>>>,
}

impl<O: ThroughputOracle> Shard<'_, O> {
    fn live_len(&self) -> usize {
        self.session.live().len()
    }

    /// Current workload + incumbent mapping, in live order.
    fn current(&self) -> Option<(Workload, Mapping)> {
        if self.session.live().is_empty() {
            return None;
        }
        let workload = Workload::from_ids(self.session.live().iter().map(|(_, m)| *m));
        let per_dnn: Vec<Vec<ComponentId>> = self
            .session
            .live()
            .iter()
            .map(|(id, _)| self.session.placement(*id).expect("live instance placed").to_vec())
            .collect();
        Some((workload, Mapping::new(per_dnn)))
    }

    /// The oracle's per-DNN prediction for the current incumbent,
    /// memoized until the next `apply`.
    fn predict_incumbent(&self, oracle: &O, workload: &Workload, incumbent: &Mapping) -> Vec<f64> {
        self.incumbent_prediction
            .borrow_mut()
            .get_or_insert_with(|| oracle.predict(workload, incumbent))
            .clone()
    }

    fn apply(&mut self, at: f64, events: &[DynamicEvent], window: f64) -> Vec<InstanceId> {
        self.incumbent_prediction.get_mut().take();
        self.session.advance_to(at);
        self.session.apply(events, window, &mut self.mapper)
    }
}

/// Where an admitted request currently runs.
#[derive(Debug, Clone, Copy)]
enum Disposition {
    Rejected,
    Active { shard: usize, instance: InstanceId },
}

/// Everything a fleet run produces.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Deterministic aggregate metrics (trace replay reproduces them
    /// bit-for-bit).
    pub metrics: FleetMetrics,
    /// The admission/placement decision log, in offered order.
    pub placements: Vec<PlacementRecord>,
    /// Per-shard serving timelines.
    pub timelines: Vec<Vec<TimelinePoint>>,
    /// Wall-clock latency of the placement decision (not part of the
    /// deterministic metrics).
    pub placement_latency: LatencyStats,
}

/// A fleet of emulated boards behind one admission/placement layer.
pub struct FleetRuntime<'p, O: ThroughputOracle> {
    platform: &'p Platform,
    oracle: &'p O,
    config: FleetConfig,
    components: usize,
    ideals: HashMap<ModelId, f64>,
    shards: Vec<Shard<'p, O>>,
}

impl<'p, O: ThroughputOracle> FleetRuntime<'p, O> {
    /// Builds a homogeneous fleet: `shards` copies of the same platform
    /// served by one shared oracle. Per-model ideal rates are measured
    /// once and shared across shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn homogeneous(
        platform: &'p Platform,
        oracle: &'p O,
        shards: usize,
        config: FleetConfig,
    ) -> Self {
        assert!(shards > 0, "a fleet needs at least one shard");
        let ideals = ideal_rates(platform, &ModelId::all());
        let runtime = DynamicRuntime::new(platform, config.sample_dt)
            .with_gain_objective(config.objective)
            .with_migration_awareness(config.migration_aware);
        let shards = (0..shards)
            .map(|i| Shard {
                mapper: RankMapMapper::new(
                    RankMapManager::new(platform, oracle, config.manager),
                    PriorityMode::Dynamic,
                    format!("shard-{i}"),
                ),
                session: runtime.session_with_ideals(ideals.clone()),
                incumbent_prediction: std::cell::RefCell::new(None),
            })
            .collect();
        Self {
            platform,
            oracle,
            config,
            components: platform.component_count(),
            ideals,
            shards,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Boots every shard's plan cache from a
    /// [`RankMapManager::export_plan_cache`] snapshot ("serve yesterday's
    /// plans"). The snapshot is parsed and bounds-checked once, then
    /// cloned into every shard. Returns the number of plans serving per
    /// shard.
    pub fn warm_plan_caches(
        &self,
        json: &str,
    ) -> Result<usize, rankmap_core::json::JsonError> {
        let loaded = rankmap_core::plan_cache::PlanCache::from_json(json)?;
        loaded.validate_components(self.components)?;
        let mut served = 0;
        for shard in &self.shards {
            served = shard.mapper.manager().install_plan_cache(loaded.clone());
        }
        Ok(served)
    }

    /// Scores placing `model` onto shard `s`: `(best weighted-potential
    /// delta, arrival's predicted potential under the best candidate)`.
    /// `None` if the shard is at capacity.
    fn score_shard(&self, s: usize, model: ModelId) -> Option<(f64, f64)> {
        let shard = &self.shards[s];
        if shard.live_len() >= self.config.max_per_shard {
            return None;
        }
        let ideal = ideal_rate_of(&self.ideals, model);
        // Trial workload: survivors first (keeping their incumbent
        // placements), the arrival appended, tried on every component.
        let trial = Workload::from_ids(
            shard.session.live().iter().map(|(_, m)| *m).chain(std::iter::once(model)),
        );
        // One weight basis for both sides of the delta: the trial
        // workload's resolved vector, its survivor prefix applied to the
        // "before" score. Scoring "before" under the n-DNN vector would
        // let a Static→Dynamic fallback (effective_mode on the n+1
        // workload) masquerade as a placement gain.
        let weights = priorities_or_uniform(&shard.mapper, &trial);
        let current = shard.current();
        let (before, survivors) = match &current {
            None => (0.0, Vec::new()),
            Some((workload, incumbent)) => {
                let per_dnn = shard.predict_incumbent(self.oracle, workload, incumbent);
                let score = weighted_potential(
                    &self.ideals,
                    workload,
                    &per_dnn,
                    &weights[..workload.len()],
                );
                (score, incumbent.per_dnn().to_vec())
            }
        };
        let arrival_units = trial.models().last().expect("arrival present").unit_count();
        let candidates: Vec<Mapping> = (0..self.components)
            .map(|c| {
                let mut per_dnn = survivors.clone();
                per_dnn.push(vec![ComponentId::new(c); arrival_units]);
                Mapping::new(per_dnn)
            })
            .collect();
        let predictions = self.oracle.predict_batch(&trial, &candidates);
        // Prefer the best-scoring candidate that clears the admission
        // floor; only when *no* component placement clears it does the
        // shard report a below-floor arrival (and get skipped by
        // `place`). Judging the floor on the single best-total candidate
        // would reject arrivals a slightly-lower-scoring component could
        // serve fine.
        let mut best_any: Option<(f64, f64)> = None;
        let mut best_clearing: Option<(f64, f64)> = None;
        for per_dnn in &predictions {
            let arrival_pot = per_dnn.last().copied().unwrap_or(0.0) / ideal;
            let score = weighted_potential(&self.ideals, &trial, per_dnn, &weights);
            if best_any.is_none_or(|(b, _)| score > b) {
                best_any = Some((score, arrival_pot));
            }
            if arrival_pot >= self.config.admission_floor
                && best_clearing.is_none_or(|(b, _)| score > b)
            {
                best_clearing = Some((score, arrival_pot));
            }
        }
        best_clearing
            .or(best_any)
            .map(|(score, arrival_pot)| (score - before, arrival_pot))
    }

    /// The admission/placement decision: the shard with the best predicted
    /// potential delta whose arrival potential clears the floor, or `None`
    /// (reject).
    fn place(&self, model: ModelId) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for s in 0..self.shards.len() {
            let Some((delta, arrival_pot)) = self.score_shard(s, model) else { continue };
            if arrival_pot < self.config.admission_floor {
                continue;
            }
            if best.is_none_or(|(_, b)| delta > b) {
                best = Some((s, delta));
            }
        }
        best
    }

    /// Unweighted mean potential of a predicted report — the collapse
    /// signal the rebalancer watches (and re-checks on the survivor set).
    fn uniform_mean_potential(&self, workload: &Workload, per_dnn: &[f64]) -> f64 {
        let uniform = vec![1.0; workload.len()];
        weighted_potential(&self.ideals, workload, per_dnn, &uniform) / workload.len() as f64
    }

    /// Mean predicted potential of a shard's current workload under its
    /// incumbent mapping (`None` when idle).
    fn shard_mean_potential(&self, s: usize) -> Option<f64> {
        let shard = &self.shards[s];
        let (workload, incumbent) = shard.current()?;
        let per_dnn = shard.predict_incumbent(self.oracle, &workload, &incumbent);
        Some(self.uniform_mean_potential(&workload, &per_dnn))
    }

    /// One rebalance attempt at time `t`: if some shard's mean predicted
    /// potential collapsed below the threshold, move its lowest-priority
    /// instance to the shard that takes it best — provided the move
    /// clears the admission floor at the destination and improves the
    /// source by the configured margin. Returns the migration performed.
    fn maybe_rebalance(
        &mut self,
        t: f64,
        requests: &mut HashMap<RequestId, Disposition>,
    ) -> Option<(usize, usize)> {
        // Worst collapsed shard with something to shed.
        let (src, src_mean) = (0..self.shards.len())
            .filter(|&s| self.shards[s].live_len() >= 2)
            .filter_map(|s| self.shard_mean_potential(s).map(|m| (s, m)))
            .min_by(|a, b| a.1.total_cmp(&b.1))?;
        if src_mean >= self.config.rebalance_threshold {
            return None;
        }
        // Victim: the live instance with the smallest priority weight.
        let (workload, incumbent) = self.shards[src].current()?;
        let weights = priorities_or_uniform(&self.shards[src].mapper, &workload);
        let victim_idx = weights
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)?;
        let (victim_id, victim_model) = self.shards[src].session.live()[victim_idx];
        // Does shedding the victim actually heal the source?
        let keep = |d: usize| d != victim_idx;
        let survivors = Workload::from_ids(
            workload.models().iter().enumerate().filter(|&(d, _)| keep(d)).map(|(_, m)| m.id()),
        );
        let survivor_mapping = Mapping::new(
            incumbent
                .per_dnn()
                .iter()
                .enumerate()
                .filter(|&(d, _)| keep(d))
                .map(|(_, assign)| assign.clone())
                .collect(),
        );
        let healed = self
            .uniform_mean_potential(&survivors, &self.oracle.predict(&survivors, &survivor_mapping));
        if healed < src_mean + self.config.rebalance_margin {
            return None;
        }
        // Best destination (capacity + floor), excluding the source. The
        // destination's own predicted loss must not exceed the source's
        // predicted healing (heuristically comparing the weighted delta
        // against the uniform mean gain — both potential-scale), so a
        // move that hurts the fleet more than it heals the source never
        // fires and migrations cannot thrash between loaded shards.
        let healing = healed - src_mean;
        let dst = (0..self.shards.len())
            .filter(|&s| s != src)
            .filter_map(|s| {
                self.score_shard(s, victim_model).and_then(|(delta, arrival_pot)| {
                    (arrival_pot >= self.config.admission_floor && delta >= -healing)
                        .then_some((s, delta))
                })
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(s, _)| s)?;
        // Execute: depart from the source, arrive at the destination. The
        // receiving board is not free — charge it (at least) the full
        // on-board restage of the victim's weights plus its stem rebuild,
        // so rebalancing cannot ping-pong instances at no modeled cost.
        let window = self.config.decision_window;
        self.shards[src].apply(t, &[DynamicEvent::depart(t, victim_id)], window);
        let assigned =
            self.shards[dst].apply(t, &[DynamicEvent::arrive(t, victim_model)], window);
        let new_id = assigned[0];
        let victim_workload = Workload::from_ids([victim_model]);
        let transfer =
            MigrationModel::new(self.platform).full_restage(&victim_workload).stall_seconds;
        self.shards[dst].session.charge_stall(transfer);
        if let Some(entry) = requests.values_mut().find(|d| {
            matches!(d, Disposition::Active { shard, instance }
                     if *shard == src && *instance == victim_id)
        }) {
            *entry = Disposition::Active { shard: dst, instance: new_id };
        }
        Some((src, dst))
    }

    /// Runs a sorted fleet event stream to `horizon`, consuming the fleet.
    ///
    /// # Panics
    ///
    /// Panics if `events` is not sorted by time or reaches outside
    /// `[0, horizon)` — e.g. a stream generated for a longer horizon than
    /// the one passed here.
    pub fn execute(mut self, events: &[FleetEvent], horizon: f64) -> FleetOutcome {
        assert!(
            events.windows(2).all(|w| w[0].at() <= w[1].at()),
            "fleet events must be sorted by time"
        );
        assert!(
            events
                .iter()
                .all(|e| (0.0..horizon).contains(&e.at())),
            "fleet events must lie within [0, horizon)"
        );
        let window = self.config.decision_window;
        let mut requests: HashMap<RequestId, Disposition> = HashMap::new();
        let mut placements = Vec::new();
        let mut latencies = Vec::new();
        let mut admitted = 0u64;
        let mut rejected = 0u64;
        let mut migrations = 0u64;
        let mut per_shard_admitted = vec![0u64; self.shards.len()];
        for event in events {
            let t = event.at();
            match event {
                FleetEvent::Arrive { request, model, .. } => {
                    let started = Instant::now();
                    let decision = self.place(*model);
                    latencies.push(started.elapsed());
                    match decision {
                        Some((s, delta)) => {
                            let assigned =
                                self.shards[s].apply(t, &[DynamicEvent::arrive(t, *model)], window);
                            requests.insert(
                                *request,
                                Disposition::Active { shard: s, instance: assigned[0] },
                            );
                            admitted += 1;
                            per_shard_admitted[s] += 1;
                            placements.push(PlacementRecord {
                                request: *request,
                                at: t,
                                outcome: PlacementOutcome::Admitted { shard: s },
                                predicted_delta: delta,
                            });
                        }
                        None => {
                            requests.insert(*request, Disposition::Rejected);
                            rejected += 1;
                            placements.push(PlacementRecord {
                                request: *request,
                                at: t,
                                outcome: PlacementOutcome::Rejected,
                                predicted_delta: 0.0,
                            });
                        }
                    }
                }
                FleetEvent::Depart { request, .. } => {
                    if let Some(Disposition::Active { shard, instance }) =
                        requests.remove(request)
                    {
                        self.shards[shard].apply(t, &[DynamicEvent::depart(t, instance)], window);
                    }
                }
                FleetEvent::SetPriorities { mode, .. } => {
                    for shard in &mut self.shards {
                        shard.apply(
                            t,
                            &[DynamicEvent::SetPriorities { at: t, mode: mode.clone() }],
                            window,
                        );
                    }
                }
            }
            // Departures free capacity and arrivals shift contention —
            // both are rebalance opportunities.
            if let Some((_, dst)) = self.maybe_rebalance(t, &mut requests) {
                migrations += 1;
                per_shard_admitted[dst] += 1;
            }
        }
        let timelines: Vec<Vec<TimelinePoint>> = self
            .shards
            .into_iter()
            .map(|mut shard| {
                shard.session.finish(horizon);
                shard.session.into_timeline()
            })
            .collect();
        let per_shard_potential: Vec<f64> =
            timelines.iter().map(|tl| timeline_average_potential(tl)).collect();
        let aggregate_potential_seconds: f64 = timelines
            .iter()
            .flat_map(|tl| tl.iter())
            .map(|pt| pt.potentials.iter().sum::<f64>() * pt.span)
            .sum();
        FleetOutcome {
            metrics: FleetMetrics {
                shards: per_shard_potential.len(),
                offered: admitted + rejected,
                admitted,
                rejected,
                migrations,
                per_shard_potential,
                per_shard_admitted,
                aggregate_potential_seconds,
            },
            placements,
            timelines,
            placement_latency: LatencyStats::from_durations(latencies),
        }
    }

    /// Replays a recorded trace (see [`Trace`]): the trace's shard count
    /// must match this fleet's.
    ///
    /// # Panics
    ///
    /// Panics if `trace.meta.shards != self.shard_count()`.
    pub fn execute_trace(self, trace: &Trace) -> FleetOutcome {
        assert_eq!(
            trace.meta.shards,
            self.shard_count(),
            "trace was recorded for a different fleet size"
        );
        self.execute(&trace.events, trace.meta.horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankmap_core::oracle::AnalyticalOracle;

    fn quick_config() -> FleetConfig {
        FleetConfig {
            manager: ManagerConfig { mcts_iterations: 80, warm_iterations: 40, ..Default::default() },
            ..Default::default()
        }
    }

    fn arrive(at: f64, k: u64, model: ModelId) -> FleetEvent {
        FleetEvent::Arrive { at, request: RequestId::new(k), model }
    }

    #[test]
    fn arrivals_spread_across_idle_shards() {
        let p = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&p);
        let fleet = FleetRuntime::homogeneous(&p, &oracle, 2, quick_config());
        let events = vec![
            arrive(0.0, 0, ModelId::InceptionV4),
            arrive(10.0, 1, ModelId::ResNet50),
        ];
        let outcome = fleet.execute(&events, 100.0);
        assert_eq!(outcome.metrics.admitted, 2);
        assert_eq!(outcome.metrics.rejected, 0);
        let shards: Vec<usize> = outcome
            .placements
            .iter()
            .map(|r| match r.outcome {
                PlacementOutcome::Admitted { shard } => shard,
                PlacementOutcome::Rejected => panic!("unexpected rejection"),
            })
            .collect();
        assert_ne!(shards[0], shards[1], "the second heavy DNN must take the idle shard");
    }

    #[test]
    fn overcommitted_fleet_spills_and_rejects() {
        let p = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&p);
        let config = FleetConfig { max_per_shard: 2, ..quick_config() };
        let fleet = FleetRuntime::homogeneous(&p, &oracle, 1, config);
        let events: Vec<FleetEvent> = (0..3)
            .map(|k| arrive(k as f64, k, ModelId::ResNet50))
            .collect();
        let outcome = fleet.execute(&events, 100.0);
        assert_eq!(outcome.metrics.admitted, 2, "capacity admits two");
        assert_eq!(outcome.metrics.rejected, 1, "the third spills nowhere and is rejected");
        assert_eq!(outcome.placements[2].outcome, PlacementOutcome::Rejected);
    }

    #[test]
    fn admission_floor_rejects_predicted_starvation() {
        let p = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&p);
        // A floor so high that sharing a board at all is unacceptable.
        let config = FleetConfig { admission_floor: 0.95, ..quick_config() };
        let fleet = FleetRuntime::homogeneous(&p, &oracle, 1, config);
        let events = vec![
            arrive(0.0, 0, ModelId::InceptionV4),
            arrive(1.0, 1, ModelId::InceptionV4),
        ];
        let outcome = fleet.execute(&events, 100.0);
        assert_eq!(outcome.metrics.admitted, 1);
        assert_eq!(
            outcome.metrics.rejected, 1,
            "an arrival predicted below the floor must be rejected even with capacity"
        );
    }

    #[test]
    fn collapsed_shard_sheds_load_to_an_idle_one() {
        let p = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&p);
        let config = FleetConfig {
            max_per_shard: 3,
            // Trigger aggressively so the crowded shard must shed.
            rebalance_threshold: 0.95,
            rebalance_margin: 0.01,
            admission_floor: 0.01,
            ..quick_config()
        };
        let fleet = FleetRuntime::homogeneous(&p, &oracle, 2, config);
        // Fill both shards with heavyweights, then empty shard 1 by
        // departing everything placed on it: shard 0 is left crowded next
        // to an idle board.
        let heavies = [
            ModelId::InceptionV4,
            ModelId::ResNet50,
            ModelId::Vgg16,
            ModelId::InceptionResnetV1,
            ModelId::DenseNet121,
            ModelId::GoogleNet,
        ];
        let mut events: Vec<FleetEvent> = heavies
            .iter()
            .enumerate()
            .map(|(k, &m)| arrive(k as f64, k as u64, m))
            .collect();
        // Probe run to learn the placement, then depart one shard's load.
        let probe = FleetRuntime::homogeneous(
            &p,
            &oracle,
            2,
            FleetConfig { rebalance_threshold: 0.0, ..quick_config() },
        );
        let placements = probe.execute(&events, 10.0).placements;
        for record in &placements {
            if record.outcome == (PlacementOutcome::Admitted { shard: 1 }) {
                events.push(FleetEvent::Depart { at: 10.0, request: record.request });
            }
        }
        let outcome = fleet.execute(&events, 300.0);
        assert!(
            outcome.metrics.migrations >= 1,
            "the crowded shard must shed an instance to the idle one: {:?}",
            outcome.metrics
        );
        // A cross-shard move is not free: the receiving board pays the
        // weight restage + stem rebuild as a visible stall point.
        assert!(
            outcome
                .timelines
                .iter()
                .flatten()
                .any(|pt| pt.time >= 10.0 && pt.migration_stall > 0.0),
            "the migration's transfer stall must surface on a timeline"
        );
    }

    #[test]
    fn warm_plan_caches_boot_every_shard() {
        let p = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&p);
        // Yesterday: one board mapped a workload set.
        let mgr = RankMapManager::new(
            &p,
            &oracle,
            ManagerConfig { mcts_iterations: 80, ..Default::default() },
        );
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::MobileNet]);
        let _ = mgr.map_cached(&w, &PriorityMode::Dynamic);
        let snapshot = mgr.export_plan_cache();
        // Today: the fleet boots serving it.
        let fleet = FleetRuntime::homogeneous(&p, &oracle, 3, quick_config());
        let served = fleet.warm_plan_caches(&snapshot).expect("snapshot loads");
        assert_eq!(served, 1);
    }
}
