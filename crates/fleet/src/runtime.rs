//! The fleet runtime: N device shards — possibly of *different* board
//! types — behind one priority-aware admission/placement layer.
//!
//! Each [`FleetRuntime`] shard is a full single-board serving stack — its
//! own `Platform`, a
//! [`RankMapManager`](rankmap_core::manager::RankMapManager) (with its
//! own plan cache), and a
//! step-wise `RuntimeSession` — interleaved on one global clock. The
//! fleet's composition comes from a [`FleetSpec`]: ordered groups of
//! identical shards, each group with its own platform
//! profile and [`ThroughputOracle`] (a mixed Orange-Pi/Jetson fleet is
//! two groups).
//!
//! An arriving DNN instance is routed by **normalized potential delta**:
//! for every shard with capacity, the placement layer builds one
//! candidate mapping per component (survivors keep their incumbent
//! placements, the arrival is tried on each component), scores the
//! candidates through the shard group's oracle, and folds per-DNN
//! throughputs into priority-weighted *potentials* — each DNN's
//! throughput divided by **that shard's own measured ideal rate** for the
//! model. Normalization is what makes the comparison meaningful across
//! dissimilar boards: a Jetson-class shard's raw inf/s would otherwise
//! dominate every delta and starve slower boards of low-priority work
//! they could serve fine (see `docs/heterogeneous.md`). The arrival is
//! admitted onto the shard whose best candidate improves its
//! fraction-of-board-ideal score the most; arrivals whose best predicted
//! potential everywhere falls below the admission floor — or that find
//! every shard at capacity — are **rejected** (spill), and a shard whose
//! mean predicted potential collapses sheds its lowest-priority instance
//! to a healthier shard (**rebalancing**, one migration per event,
//! charged at the destination board's own transfer link).
//!
//! Placement scoring is **fused** by default
//! ([`FleetConfig::fused_scoring`]): probes for all shards of a platform
//! group are deduplicated (two idle Orange Pis ask the oracle the exact
//! same question), answered by one
//! [`ThroughputOracle::predict_grouped`] call per oracle, and memoized
//! across events in an LRU-bounded probe memo. Fused and serial scoring
//! make bit-identical decisions (tested); fused is the faster execution
//! strategy at high shard counts (benchmarked in `fleet_hetero`).
//!
//! Execution itself is **shard-parallel**: the executor
//! ([`crate::executor`]) fans per-shard work — probe building,
//! priority-rotation remaps, the rebalancer's health scan, the final
//! timeline close — across worker threads, either between global event
//! barriers ([`crate::Parallelism::Threads`]) or barrier-free over an
//! epoch-sequenced lookahead window of the event log
//! ([`crate::Parallelism::Async`]: arrivals are speculatively scored
//! against bounded-staleness shard snapshots and every speculative probe
//! is validated at apply time; with `apply_lanes: true` the apply side
//! also retires out-of-order through per-shard lanes — prepared
//! concurrently, committed in log order, see `docs/fleet.md`). Results
//! merge in canonical shard order, so the outcome is bit-identical to
//! [`crate::Parallelism::Sequential`] at any width, staleness bound,
//! and lane setting (see the executor docs for the determinism
//! argument, and `crates/fleet/tests/{parallel,async_exec}.rs` for the
//! property tests).
//!
//! The fleet also survives **board failures** (see [`crate::FaultSpec`]
//! and `docs/fleet.md`): a `ShardDown` event triages the failing shard's
//! live instances by priority and evacuates them onto survivors through
//! the same normalized-potential placement path — highest priority
//! first, each move charged the destination's real migration stall —
//! shedding only what no survivor can absorb. A `ShardThrottle` derates
//! a shard's served throughput and its placement bids by a factor
//! without changing any mapping decision (uniform scaling leaves
//! potential ratios intact), and rejected arrivals can retry with
//! deterministic exponential backoff ([`FleetConfig::retry_limit`]).
//! Everything — fault injection, evacuation, retries — replays
//! bit-for-bit from a version-3 trace at any [`crate::Parallelism`].
//!
//! The candidate batch only *routes*; the shard's own mapper still runs
//! its warm-started search (plan cache and all) once the instance lands,
//! so per-shard mapping quality is exactly the PR 2 serving runtime's.

use crate::executor::{FleetConfig, FleetConfigError, FleetExecutor};
use crate::load::FleetEvent;
use crate::metrics::{FleetMetrics, LatencyStats, PlacementRecord};
use crate::spec::FleetSpec;
use crate::telemetry::TelemetrySnapshot;
use crate::trace::Trace;
use rankmap_core::oracle::ThroughputOracle;
use rankmap_core::runtime::TimelinePoint;
use rankmap_models::ModelId;
use rankmap_platform::Platform;

/// Everything a fleet run produces.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Deterministic aggregate metrics (trace replay reproduces them
    /// bit-for-bit).
    pub metrics: FleetMetrics,
    /// The admission/placement decision log, in offered order.
    pub placements: Vec<PlacementRecord>,
    /// Per-shard serving timelines.
    pub timelines: Vec<Vec<TimelinePoint>>,
    /// Wall-clock latency of the placement decision (not part of the
    /// deterministic metrics).
    pub placement_latency: LatencyStats,
    /// Wall-clock latency of handling each shard failure — triage plus
    /// every evacuation probe and re-place of that outage. Like
    /// `placement_latency`, deliberately outside the deterministic
    /// [`FleetMetrics`] (the *simulated* evacuation cost is
    /// [`FleetMetrics::evacuation_stall_seconds`]).
    pub evacuation_latency: LatencyStats,
    /// Everything the run's telemetry collected — registry, flight
    /// recorder, per-shard time series (see
    /// [`crate::telemetry::TelemetrySnapshot`]). `None` when
    /// [`FleetConfig::telemetry`] was disabled. Enabled or disabled, the
    /// deterministic fields above are bit-identical.
    pub telemetry: Option<TelemetrySnapshot>,
}

/// A fleet of emulated boards behind one admission/placement layer.
///
/// This is the public facade over the shard-parallel [`FleetExecutor`]:
/// construction, plan-cache warming, probe-score observability, and the
/// execute/replay entry points.
pub struct FleetRuntime<'p, O: ThroughputOracle> {
    executor: FleetExecutor<'p, O>,
}

impl<'p, O: ThroughputOracle> FleetRuntime<'p, O> {
    /// Builds a fleet from a [`FleetSpec`]: each group contributes
    /// `count` shards on its own platform, with per-model ideal rates
    /// measured once per group and cloned into its shards.
    ///
    /// # Example
    ///
    /// A two-board mixed fleet serving two arrivals (tiny search budgets
    /// keep this runnable as a doctest):
    ///
    /// ```
    /// use rankmap_core::manager::ManagerConfig;
    /// use rankmap_core::oracle::AnalyticalOracle;
    /// use rankmap_fleet::{FleetConfig, FleetEvent, FleetRuntime, FleetSpec, RequestId, ShardSpec};
    /// use rankmap_models::ModelId;
    /// use rankmap_platform::Platform;
    ///
    /// let orange = Platform::orange_pi_5();
    /// let jetson = Platform::jetson_orin_nx();
    /// let orange_oracle = AnalyticalOracle::new(&orange);
    /// let jetson_oracle = AnalyticalOracle::new(&jetson);
    /// let spec = FleetSpec::new(vec![
    ///     ShardSpec::new(&orange, &orange_oracle, 1),
    ///     ShardSpec::new(&jetson, &jetson_oracle, 1),
    /// ]);
    /// let config = FleetConfig {
    ///     manager: ManagerConfig { mcts_iterations: 40, warm_iterations: 20, ..Default::default() },
    ///     ..Default::default()
    /// };
    /// let fleet = FleetRuntime::new(&spec, config);
    /// assert_eq!(fleet.platform_names(), ["orange-pi-5", "jetson-orin-nx"]);
    /// let events = vec![
    ///     FleetEvent::Arrive { at: 0.0, request: RequestId::new(0), model: ModelId::AlexNet },
    ///     FleetEvent::Arrive { at: 10.0, request: RequestId::new(1), model: ModelId::ResNet50 },
    /// ];
    /// let outcome = fleet.execute(&events, 60.0);
    /// assert_eq!(outcome.metrics.admitted, 2);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics when the configuration is rejected by
    /// [`FleetConfig::validate`] (e.g. an [`crate::Parallelism::Async`]
    /// `max_epoch_lag` beyond [`crate::LOOKAHEAD_BOUND`]); use
    /// [`FleetRuntime::try_new`] for the `Result` surface.
    pub fn new(spec: &FleetSpec<'p, O>, config: FleetConfig) -> Self {
        match Self::try_new(spec, config) {
            Ok(fleet) => fleet,
            Err(err) => panic!("invalid fleet config: {err}"),
        }
    }

    /// [`FleetRuntime::new`] with configuration errors surfaced as a
    /// [`FleetConfigError`] instead of a panic — the counterpart of
    /// [`FleetSpec::try_new`](crate::FleetSpec::try_new) for the
    /// executor-level knobs.
    ///
    /// # Errors
    ///
    /// Whatever [`FleetConfig::validate`] rejects — currently an
    /// [`crate::Parallelism::Async`] `max_epoch_lag` above
    /// [`crate::LOOKAHEAD_BOUND`], which the bounded lookahead window
    /// could never realize.
    pub fn try_new(
        spec: &FleetSpec<'p, O>,
        config: FleetConfig,
    ) -> Result<Self, FleetConfigError> {
        config.validate()?;
        Ok(Self { executor: FleetExecutor::new(spec, config) })
    }

    /// Builds a homogeneous fleet: `shards` copies of the same platform
    /// served by one shared oracle (shorthand for
    /// [`FleetSpec::homogeneous`] + [`FleetRuntime::new`]).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn homogeneous(
        platform: &'p Platform,
        oracle: &'p O,
        shards: usize,
        config: FleetConfig,
    ) -> Self {
        assert!(shards > 0, "a fleet needs at least one shard");
        Self::new(&FleetSpec::homogeneous(platform, oracle, shards), config)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.executor.shards.len()
    }

    /// Per-shard platform names, in shard order — the fleet mix a trace
    /// records and replay verifies.
    pub fn platform_names(&self) -> &[String] {
        &self.executor.platforms
    }

    /// Hit/miss counters of the fused scorer's cross-event probe memo —
    /// observability for tests and benches (the memo is LRU-bounded by
    /// [`FleetConfig::probe_memo_capacity`]; hits answer a probe without
    /// an oracle call and are bit-identical to recomputing it). Counters
    /// tally unique oracle questions per event: shards sharing a
    /// deduplicated probe count once, so the hit ratio reflects actual
    /// oracle-call savings.
    pub fn probe_memo_stats(&self) -> rankmap_telemetry::MemoStats {
        self.executor.probe_memo.stats()
    }

    /// A point-in-time telemetry snapshot — the registry with probe-memo
    /// and plan-cache totals overlaid, the flight recorder's retained
    /// window, and the per-shard time series collected so far. `None`
    /// when [`FleetConfig::telemetry`] is disabled. A finished run's
    /// snapshot rides on [`FleetOutcome::telemetry`] instead.
    pub fn telemetry(&self) -> Option<TelemetrySnapshot> {
        self.executor.telemetry.snapshot(
            &self.executor.probe_memo,
            &self.executor.shards,
            None,
            None,
        )
    }

    /// Boots shard plan caches from a
    /// [`RankMapManager::export_plan_cache`](rankmap_core::manager::RankMapManager::export_plan_cache)
    /// snapshot ("serve yesterday's
    /// plans"). The snapshot is parsed once, then installed onto every
    /// shard whose board it was recorded for: a platform-tagged snapshot
    /// only warms shards with the matching
    /// [`Platform::signature`], and an untagged (legacy) snapshot only
    /// shards it shape-validates against — on a mixed fleet the other
    /// shards simply boot cold. Returns the number of plans serving per
    /// warmed shard.
    ///
    /// # Errors
    ///
    /// Fails if the snapshot does not parse, or if *no* shard of the
    /// fleet can accept it (wrong board type everywhere).
    pub fn warm_plan_caches(
        &self,
        json: &str,
    ) -> Result<usize, rankmap_core::json::JsonError> {
        let loaded = rankmap_core::plan_cache::PlanCache::from_json(json)?;
        let mut served = None;
        let mut last_err = None;
        for shard in &self.executor.shards {
            let compatible = loaded
                .validate_platform(&shard.platform.signature())
                .and_then(|()| loaded.validate_components(shard.platform.component_count()));
            match compatible {
                Ok(()) => {
                    served = Some(shard.mapper.manager().install_plan_cache(loaded.clone()));
                }
                Err(e) => last_err = Some(e),
            }
        }
        match served {
            Some(n) => Ok(n),
            None => Err(last_err.unwrap_or_else(|| {
                rankmap_core::json::JsonError::semantic("the fleet has no shards")
            })),
        }
    }

    /// Scores placing `model` on every shard: `scores[s]` is the shard's
    /// `(normalized potential delta, arrival potential)` — the router's
    /// decision inputs — or `None` for shards at capacity. Potentials are
    /// fractions of each shard's *own* board ideal, so the numbers are
    /// comparable across a mixed fleet.
    ///
    /// Under [`FleetConfig::fused_scoring`] the probes are grouped per
    /// platform, deduplicated — within the event (two idle Orange Pis ask
    /// the identical question) *and* across events (a probe's fingerprint
    /// fully determines the oracle's answer, so a shard whose state has
    /// not changed since the same model last arrived is answered from the
    /// LRU probe memo) — and the remaining unique questions answered by
    /// one [`ThroughputOracle::predict_grouped`] call per oracle.
    /// Otherwise each shard is scored by its own `predict_batch` call.
    /// Both paths produce bit-identical scores, at any
    /// [`crate::Parallelism`].
    ///
    /// Takes `&mut self`: probe building refreshes the per-shard memos
    /// (shards are owned `Send` state now — no interior mutability).
    pub fn probe_scores(&mut self, model: ModelId) -> Vec<Option<(f64, f64)>> {
        self.executor.probe_scores(model)
    }

    /// Runs a sorted fleet event stream to `horizon`, consuming the fleet.
    ///
    /// # Panics
    ///
    /// Panics if `events` is not sorted by time or reaches outside
    /// `[0, horizon)` — e.g. a stream generated for a longer horizon than
    /// the one passed here.
    pub fn execute(self, events: &[FleetEvent], horizon: f64) -> FleetOutcome {
        self.executor.run(events, horizon)
    }

    /// [`FleetRuntime::execute`] over a pull-based event source — the
    /// million-instance entry point. Paired with
    /// [`crate::load::LoadStream`], the event vector is never
    /// materialized: events are pulled, validated, and applied one at a
    /// time, so peak memory is bounded by the fleet state rather than
    /// the run length.
    ///
    /// # Panics
    ///
    /// As [`FleetRuntime::execute`], with validation performed as events
    /// are pulled rather than up front.
    pub fn execute_stream<I>(self, events: I, horizon: f64) -> FleetOutcome
    where
        I: IntoIterator<Item = FleetEvent>,
    {
        self.executor.run_stream(events, horizon)
    }

    /// Replays a recorded trace (see [`Trace`]): the trace's shard count
    /// — and, for version-2 traces, its per-shard platform mix — must
    /// match this fleet's.
    ///
    /// # Panics
    ///
    /// Panics if `trace.meta.shards != self.shard_count()`, or if the
    /// trace declares a platform mix that differs from this fleet's
    /// [`FleetRuntime::platform_names`].
    pub fn execute_trace(self, trace: &Trace) -> FleetOutcome {
        assert_eq!(
            trace.meta.shards,
            self.shard_count(),
            "trace was recorded for a different fleet size"
        );
        if !trace.meta.platforms.is_empty() {
            assert_eq!(
                trace.meta.platforms,
                self.executor.platforms,
                "trace was recorded on a different fleet platform mix"
            );
        }
        self.execute(&trace.events, trace.meta.horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::RequestId;
    use crate::metrics::PlacementOutcome;
    use crate::spec::ShardSpec;
    use rankmap_core::manager::{ManagerConfig, RankMapManager};
    use rankmap_core::oracle::AnalyticalOracle;
    use rankmap_core::priority::PriorityMode;
    use rankmap_sim::Workload;

    fn quick_config() -> FleetConfig {
        FleetConfig {
            manager: ManagerConfig { mcts_iterations: 80, warm_iterations: 40, ..Default::default() },
            ..Default::default()
        }
    }

    fn arrive(at: f64, k: u64, model: ModelId) -> FleetEvent {
        FleetEvent::Arrive { at, request: RequestId::new(k), model }
    }

    #[test]
    fn fleet_runtime_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<FleetRuntime<'static, AnalyticalOracle<'static>>>();
    }

    #[test]
    fn arrivals_spread_across_idle_shards() {
        let p = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&p);
        let fleet = FleetRuntime::homogeneous(&p, &oracle, 2, quick_config());
        let events = vec![
            arrive(0.0, 0, ModelId::InceptionV4),
            arrive(10.0, 1, ModelId::ResNet50),
        ];
        let outcome = fleet.execute(&events, 100.0);
        assert_eq!(outcome.metrics.admitted, 2);
        assert_eq!(outcome.metrics.rejected, 0);
        // Collect only admissions — no panic on other outcomes; the
        // admitted/rejected counters above already pin the totals.
        let shards: Vec<usize> = outcome
            .placements
            .iter()
            .filter_map(|r| match r.outcome {
                PlacementOutcome::Admitted { shard } => Some(shard),
                _ => None,
            })
            .collect();
        assert_eq!(shards.len(), 2);
        assert_ne!(shards[0], shards[1], "the second heavy DNN must take the idle shard");
    }

    #[test]
    fn overcommitted_fleet_spills_and_rejects() {
        let p = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&p);
        let config = FleetConfig { max_per_shard: 2, ..quick_config() };
        let fleet = FleetRuntime::homogeneous(&p, &oracle, 1, config);
        let events: Vec<FleetEvent> = (0..3)
            .map(|k| arrive(k as f64, k, ModelId::ResNet50))
            .collect();
        let outcome = fleet.execute(&events, 100.0);
        assert_eq!(outcome.metrics.admitted, 2, "capacity admits two");
        assert_eq!(outcome.metrics.rejected, 1, "the third spills nowhere and is rejected");
        assert_eq!(outcome.placements[2].outcome, PlacementOutcome::Rejected);
    }

    #[test]
    fn admission_floor_rejects_predicted_starvation() {
        let p = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&p);
        // A floor so high that sharing a board at all is unacceptable.
        let config = FleetConfig { admission_floor: 0.95, ..quick_config() };
        let fleet = FleetRuntime::homogeneous(&p, &oracle, 1, config);
        let events = vec![
            arrive(0.0, 0, ModelId::InceptionV4),
            arrive(1.0, 1, ModelId::InceptionV4),
        ];
        let outcome = fleet.execute(&events, 100.0);
        assert_eq!(outcome.metrics.admitted, 1);
        assert_eq!(
            outcome.metrics.rejected, 1,
            "an arrival predicted below the floor must be rejected even with capacity"
        );
    }

    #[test]
    fn collapsed_shard_sheds_load_to_an_idle_one() {
        let p = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&p);
        let config = FleetConfig {
            max_per_shard: 3,
            // Trigger aggressively so the crowded shard must shed.
            rebalance_threshold: 0.95,
            rebalance_margin: 0.01,
            admission_floor: 0.01,
            ..quick_config()
        };
        let fleet = FleetRuntime::homogeneous(&p, &oracle, 2, config);
        // Fill both shards with heavyweights, then empty shard 1 by
        // departing everything placed on it: shard 0 is left crowded next
        // to an idle board.
        let heavies = [
            ModelId::InceptionV4,
            ModelId::ResNet50,
            ModelId::Vgg16,
            ModelId::InceptionResnetV1,
            ModelId::DenseNet121,
            ModelId::GoogleNet,
        ];
        let mut events: Vec<FleetEvent> = heavies
            .iter()
            .enumerate()
            .map(|(k, &m)| arrive(k as f64, k as u64, m))
            .collect();
        // Probe run to learn the placement, then depart one shard's load.
        let probe = FleetRuntime::homogeneous(
            &p,
            &oracle,
            2,
            FleetConfig { rebalance_threshold: 0.0, ..quick_config() },
        );
        let placements = probe.execute(&events, 10.0).placements;
        for record in &placements {
            if record.outcome == (PlacementOutcome::Admitted { shard: 1 }) {
                events.push(FleetEvent::Depart { at: 10.0, request: record.request });
            }
        }
        let outcome = fleet.execute(&events, 300.0);
        assert!(
            outcome.metrics.migrations >= 1,
            "the crowded shard must shed an instance to the idle one: {:?}",
            outcome.metrics
        );
        // A cross-shard move is not free: the receiving board pays the
        // weight restage + stem rebuild as a visible stall point.
        assert!(
            outcome
                .timelines
                .iter()
                .flatten()
                .any(|pt| pt.time >= 10.0 && pt.migration_stall > 0.0),
            "the migration's transfer stall must surface on a timeline"
        );
    }

    #[test]
    fn warm_plan_caches_boot_every_shard() {
        let p = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&p);
        // Yesterday: one board mapped a workload set.
        let mgr = RankMapManager::new(
            &p,
            &oracle,
            ManagerConfig { mcts_iterations: 80, ..Default::default() },
        );
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::MobileNet]);
        let _ = mgr.map_cached(&w, &PriorityMode::Dynamic);
        let snapshot = mgr.export_plan_cache();
        // Today: the fleet boots serving it.
        let fleet = FleetRuntime::homogeneous(&p, &oracle, 3, quick_config());
        let served = fleet.warm_plan_caches(&snapshot).expect("snapshot loads");
        assert_eq!(served, 1);
    }

    #[test]
    fn warm_plan_caches_skip_mismatched_boards_on_a_mixed_fleet() {
        let orange = Platform::orange_pi_5();
        let jetson = Platform::jetson_orin_nx();
        let orange_oracle = AnalyticalOracle::new(&orange);
        let jetson_oracle = AnalyticalOracle::new(&jetson);
        // Yesterday's plans were recorded on an Orange Pi.
        let mgr = RankMapManager::new(
            &orange,
            &orange_oracle,
            ManagerConfig { mcts_iterations: 80, ..Default::default() },
        );
        let w = Workload::from_ids([ModelId::AlexNet]);
        let _ = mgr.map_cached(&w, &PriorityMode::Dynamic);
        let snapshot = mgr.export_plan_cache();
        // A mixed fleet warms only its Orange Pi shards with them.
        let spec = FleetSpec::new(vec![
            ShardSpec::new(&orange, &orange_oracle, 1),
            ShardSpec::new(&jetson, &jetson_oracle, 1),
        ]);
        let fleet = FleetRuntime::new(&spec, quick_config());
        assert_eq!(fleet.warm_plan_caches(&snapshot).expect("orange shards warm"), 1);
        // A Jetson-only fleet refuses the snapshot outright.
        let jetson_fleet = FleetRuntime::homogeneous(&jetson, &jetson_oracle, 2, quick_config());
        let err = jetson_fleet.warm_plan_caches(&snapshot).unwrap_err();
        assert!(
            err.to_string().contains("never cross board types"),
            "a wrong-board snapshot must fail loudly: {err}"
        );
    }

    #[test]
    fn fused_and_serial_scoring_make_identical_decisions() {
        // Fused scoring is an execution strategy, not a policy: a mixed
        // fleet must admit, place, reject, and rebalance identically with
        // it on or off.
        let orange = Platform::orange_pi_5();
        let jetson = Platform::jetson_orin_nx();
        let orange_oracle = AnalyticalOracle::new(&orange);
        let jetson_oracle = AnalyticalOracle::new(&jetson);
        let spec = || {
            FleetSpec::new(vec![
                ShardSpec::new(&orange, &orange_oracle, 2),
                ShardSpec::new(&jetson, &jetson_oracle, 2),
            ])
        };
        let events: Vec<FleetEvent> = [
            ModelId::ResNet50,
            ModelId::AlexNet,
            ModelId::InceptionV4,
            ModelId::MobileNet,
            ModelId::Vgg16,
            ModelId::SqueezeNetV2,
        ]
        .iter()
        .enumerate()
        .map(|(k, &m)| arrive(k as f64 * 5.0, k as u64, m))
        .collect();
        let fused = FleetRuntime::new(&spec(), quick_config()).execute(&events, 120.0);
        let serial = FleetRuntime::new(
            &spec(),
            FleetConfig { fused_scoring: false, ..quick_config() },
        )
        .execute(&events, 120.0);
        assert_eq!(fused.placements, serial.placements);
        assert_eq!(fused.metrics, serial.metrics);
        assert_eq!(fused.timelines, serial.timelines);
    }

    #[test]
    fn tiny_probe_memo_changes_no_decision() {
        // The LRU bound is a memory knob, not a policy: a memo that can
        // hold a single answer (evicting on every insert) must produce
        // the exact outcome of the default bound — eviction only costs a
        // recomputation, because entries are pure.
        let p = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&p);
        let events: Vec<FleetEvent> = [
            ModelId::ResNet50,
            ModelId::AlexNet,
            ModelId::ResNet50,
            ModelId::AlexNet,
            ModelId::MobileNet,
        ]
        .iter()
        .enumerate()
        .map(|(k, &m)| arrive(k as f64 * 4.0, k as u64, m))
        .collect();
        let roomy = FleetRuntime::homogeneous(&p, &oracle, 3, quick_config())
            .execute(&events, 120.0);
        let starved = FleetRuntime::homogeneous(
            &p,
            &oracle,
            3,
            FleetConfig { probe_memo_capacity: 1, ..quick_config() },
        )
        .execute(&events, 120.0);
        assert_eq!(roomy.placements, starved.placements);
        assert_eq!(roomy.metrics, starved.metrics);
        assert_eq!(roomy.timelines, starved.timelines);
    }

    #[test]
    fn repeated_probes_hit_the_cross_event_memo() {
        // Two identical arrivals against an unchanged shard ask the
        // identical oracle question: the second must be answered from the
        // memo (and the answer is bit-identical by the purity of the
        // fingerprint, which tiny_probe_memo_changes_no_decision checks
        // end to end).
        let p = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&p);
        let mut fleet = FleetRuntime::homogeneous(&p, &oracle, 2, quick_config());
        let first = fleet.probe_scores(ModelId::AlexNet);
        let hits_after_first = fleet.probe_memo_stats().hits;
        let second = fleet.probe_scores(ModelId::AlexNet);
        let hits_after_second = fleet.probe_memo_stats().hits;
        assert_eq!(first, second, "an unchanged fleet scores identically");
        assert!(
            hits_after_second > hits_after_first,
            "the repeat probe must be served from the memo: {hits_after_first} → {hits_after_second}"
        );
    }

    #[test]
    fn fast_board_does_not_monopolize_normalized_routing() {
        // The heterogeneity point: under normalized scoring an idle
        // Orange Pi outbids a busy Jetson for a model it can serve near
        // its own ideal — raw-throughput scoring would never route there.
        let orange = Platform::orange_pi_5();
        let jetson = Platform::jetson_orin_nx();
        let orange_oracle = AnalyticalOracle::new(&orange);
        let jetson_oracle = AnalyticalOracle::new(&jetson);
        let spec = FleetSpec::new(vec![
            ShardSpec::new(&orange, &orange_oracle, 1),
            ShardSpec::new(&jetson, &jetson_oracle, 1),
        ]);
        let fleet = FleetRuntime::new(&spec, quick_config());
        let events: Vec<FleetEvent> = [
            ModelId::InceptionV4,
            ModelId::ResNet50,
            ModelId::Vgg16,
            ModelId::AlexNet,
        ]
        .iter()
        .enumerate()
        .map(|(k, &m)| arrive(k as f64, k as u64, m))
        .collect();
        let outcome = fleet.execute(&events, 100.0);
        assert_eq!(outcome.metrics.admitted, 4);
        let oranges = outcome.metrics.per_shard_admitted[0];
        assert!(
            oranges >= 1,
            "the slower board must win some arrivals under normalized routing: {:?}",
            outcome.metrics.per_shard_admitted
        );
        assert_eq!(
            outcome.metrics.per_shard_platform,
            vec!["orange-pi-5".to_string(), "jetson-orin-nx".to_string()]
        );
    }
}
