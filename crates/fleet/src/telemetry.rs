//! Fleet instrumentation over [`rankmap_telemetry`]: the config knob,
//! the executor-owned collector, and the public snapshot.
//!
//! **Telemetry lives strictly off the decision path.** Every hook in the
//! executor/placement/rebalance/fault code only *reads* state the
//! decision logic already computed (or memoized pure state like
//! `Shard::mean_potential`, which is invalidated on apply and identical
//! whether or not a sampler read it earlier), and writes into structures
//! nothing on the decision path ever reads. A run with telemetry enabled
//! is therefore bit-identical — placements, timelines, `FleetMetrics`,
//! trace replays — to the same run with it disabled, at any
//! [`crate::Parallelism`] (property-tested in `tests/telemetry.rs`).
//!
//! Two metric families with different determinism contracts:
//!
//! * **Sim-clock metrics** (stage entry counters, event counters,
//!   per-shard gauges and ring series sampled at the executor's
//!   `sample_dt` cadence, the flight recorder) are pure functions of the
//!   event stream and replay deterministically.
//! * **Wall-clock stage histograms** are gated behind
//!   [`TelemetrySpec::wall_clock`] and live in a separate
//!   `stage_wall_seconds{stage=...}` family, so deterministic consumers
//!   simply never look at them. (The placement/evacuation wall latency
//!   of [`crate::FleetOutcome`] is measured unconditionally, exactly as
//!   before telemetry existed.)

use crate::placement::ProbeMemo;
use crate::shard::Shard;
use rankmap_core::oracle::ThroughputOracle;
use rankmap_telemetry::{
    registry::labeled, FlightRecorder, Histogram, Registry, StageTimer,
};

/// Stage labels of the executor's per-barrier spans — the closed set the
/// `fleet_stage_entered_total` counters and (gated) wall histograms key
/// on.
pub mod stage {
    /// Per-shard probe construction fan-out.
    pub const PROBE_BUILD: &str = "probe_build";
    /// Grouped/serial oracle scoring + fold.
    pub const FUSED_SCORING: &str = "fused_scoring";
    /// Applying an admitted arrival to its shard.
    pub const APPLY: &str = "apply";
    /// Fleet-wide `SetPriorities` remap barrier.
    pub const REMAP: &str = "remap";
    /// The rebalancer/overload-guard health question.
    pub const REBALANCE_SCAN: &str = "rebalance_scan";
    /// Shard-failure triage + evacuation.
    pub const EVACUATION: &str = "evacuation";
    /// Incremental index refile sweep.
    pub const INDEX_REFILE: &str = "index_refile";
    /// The epoch log's speculative scoring fan over a lookahead window.
    pub const SPECULATE: &str = "speculate";
    /// The apply-lane scheduler's parallel prepare fan (per-shard remap +
    /// migration decision, computed without mutating the shards).
    pub const APPLY_PREPARE: &str = "apply_prepare";
    /// The apply-lane scheduler's serial commit walk (installing prepared
    /// applies in log order, running the deferred per-position checks).
    pub const APPLY_COMMIT: &str = "apply_commit";
}

/// The fully static counter key of a stage — a `match` rather than
/// `labeled()` so hot-path stage entries never allocate.
fn entered_key(stage_name: &'static str) -> &'static str {
    match stage_name {
        stage::PROBE_BUILD => "fleet_stage_entered_total{stage=\"probe_build\"}",
        stage::FUSED_SCORING => "fleet_stage_entered_total{stage=\"fused_scoring\"}",
        stage::APPLY => "fleet_stage_entered_total{stage=\"apply\"}",
        stage::REMAP => "fleet_stage_entered_total{stage=\"remap\"}",
        stage::REBALANCE_SCAN => "fleet_stage_entered_total{stage=\"rebalance_scan\"}",
        stage::EVACUATION => "fleet_stage_entered_total{stage=\"evacuation\"}",
        stage::INDEX_REFILE => "fleet_stage_entered_total{stage=\"index_refile\"}",
        stage::SPECULATE => "fleet_stage_entered_total{stage=\"speculate\"}",
        stage::APPLY_PREPARE => "fleet_stage_entered_total{stage=\"apply_prepare\"}",
        stage::APPLY_COMMIT => "fleet_stage_entered_total{stage=\"apply_commit\"}",
        _ => "fleet_stage_entered_total{stage=\"other\"}",
    }
}

/// Telemetry configuration on [`crate::FleetConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetrySpec {
    /// Master switch. Off (the default) makes every hook an early-return
    /// branch, so un-instrumented runs keep their baseline cost and
    /// [`crate::FleetOutcome::telemetry`] is `None`.
    pub enabled: bool,
    /// Also time stages on the wall clock (into the non-deterministic
    /// `stage_wall_seconds` histogram family). Off by default so an
    /// enabled-telemetry run still exports byte-identical text on
    /// replay.
    pub wall_clock: bool,
    /// Points retained per shard's time-series ring (sampled every
    /// `sample_dt` of simulation time).
    pub series_capacity: usize,
    /// Records retained by the flight recorder's ring.
    pub recorder_capacity: usize,
}

impl Default for TelemetrySpec {
    fn default() -> Self {
        Self {
            enabled: false,
            wall_clock: false,
            series_capacity: 240,
            recorder_capacity: 4096,
        }
    }
}

impl TelemetrySpec {
    /// Deterministic telemetry on (sim-clock metrics, series, flight
    /// recorder), wall-clock timing still off.
    pub fn on() -> Self {
        Self { enabled: true, ..Self::default() }
    }

    /// Adds wall-clock stage timing (the one non-deterministic family).
    pub fn with_wall_clock(mut self) -> Self {
        self.wall_clock = true;
        self
    }
}

/// One sampled point of a shard's time series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardSample {
    /// Live instances on the shard.
    pub live: usize,
    /// Mean predicted normalized potential (memoized pure read; `None`
    /// when idle or down).
    pub mean_potential: Option<f64>,
    /// Served fraction of nominal speed (1.0 = unthrottled).
    pub derate: f64,
    /// The shard's state epoch (bumps on every apply/down).
    pub epoch: u64,
    /// Whether the shard is down.
    pub down: bool,
    /// Requests admitted onto the shard so far (rebalance arrivals and
    /// evacuations included).
    pub admitted: u64,
}

/// The executor-owned collector: registry + flight recorder + per-shard
/// rings, all behind the `enabled` early-return.
pub(crate) struct FleetTelemetry {
    spec: TelemetrySpec,
    registry: Registry,
    recorder: FlightRecorder,
    series: Vec<rankmap_telemetry::RingSeries<ShardSample>>,
    sample_dt: f64,
    next_sample: f64,
}

impl FleetTelemetry {
    pub(crate) fn new(spec: TelemetrySpec, shards: usize, sample_dt: f64) -> Self {
        let series = if spec.enabled {
            (0..shards)
                .map(|_| rankmap_telemetry::RingSeries::new(spec.series_capacity))
                .collect()
        } else {
            Vec::new()
        };
        Self {
            registry: Registry::new(),
            recorder: FlightRecorder::new(if spec.enabled { spec.recorder_capacity } else { 0 }),
            series,
            sample_dt,
            next_sample: 0.0,
            spec,
        }
    }

    /// Whether any hook should spend effort building payloads.
    pub(crate) fn enabled(&self) -> bool {
        self.spec.enabled
    }

    /// Enters a stage: bumps its deterministic entry counter and starts
    /// a wall timer (a no-op unless `wall_clock` is on). Resolve with
    /// [`FleetTelemetry::finish`].
    pub(crate) fn stage(&mut self, name: &'static str) -> StageTimer {
        if self.spec.enabled {
            self.registry.counter_add(entered_key(name), 1);
        }
        StageTimer::start(self.spec.enabled && self.spec.wall_clock, name)
    }

    /// Resolves a stage timer into the wall histogram family.
    pub(crate) fn finish(&mut self, timer: StageTimer) {
        timer.finish(&mut self.registry);
    }

    /// Adds `n` to a (static-keyed) counter.
    pub(crate) fn count(&mut self, key: &'static str, n: u64) {
        if self.spec.enabled && n > 0 {
            self.registry.counter_add(key, n);
        }
    }

    /// Sets a (static-keyed) gauge — e.g. `fleet_lane_occupancy`, the
    /// distinct shards retiring applies in the last drained lane batch.
    pub(crate) fn gauge(&mut self, key: &'static str, value: f64) {
        if self.spec.enabled {
            self.registry.gauge_set(key, value);
        }
    }

    /// Appends a flight record; `Some(seq)` is usable as a later
    /// record's `cause`. Callers with non-trivial field payloads should
    /// guard construction with [`FleetTelemetry::enabled`].
    pub(crate) fn record(
        &mut self,
        at: f64,
        kind: &'static str,
        cause: Option<u64>,
        fields: Vec<(&'static str, String)>,
    ) -> Option<u64> {
        if !self.spec.enabled {
            return None;
        }
        Some(self.recorder.record(at, kind, cause, fields))
    }

    /// Samples every shard's gauges and ring series if the sim clock
    /// crossed the sampling cadence. Reads only memoized pure shard
    /// state, so decisions are unaffected by whether sampling ran.
    pub(crate) fn maybe_sample<O: ThroughputOracle>(
        &mut self,
        t: f64,
        shards: &mut [Shard<'_, O>],
        per_shard_admitted: &[u64],
        epoch_lags: &[u64],
    ) {
        if !self.spec.enabled || t < self.next_sample {
            return;
        }
        self.next_sample = t + self.sample_dt;
        self.registry.gauge_set("fleet_sim_time_seconds", t);
        for (s, shard) in shards.iter_mut().enumerate() {
            let down = shard.is_down();
            let sample = ShardSample {
                live: shard.live_len(),
                mean_potential: if down { None } else { shard.mean_potential() },
                derate: shard.throttle(),
                epoch: shard.epoch(),
                down,
                admitted: per_shard_admitted[s],
            };
            let id = s.to_string();
            let shard_label: &[(&str, &str)] = &[("shard", &id)];
            self.registry
                .gauge_set(&labeled("fleet_shard_live", shard_label), sample.live as f64);
            if let Some(mean) = sample.mean_potential {
                self.registry
                    .gauge_set(&labeled("fleet_shard_mean_potential", shard_label), mean);
            }
            self.registry
                .gauge_set(&labeled("fleet_shard_derate", shard_label), sample.derate);
            self.registry
                .gauge_set(&labeled("fleet_shard_epoch", shard_label), sample.epoch as f64);
            self.registry.gauge_set(
                &labeled("fleet_shard_admitted", shard_label),
                sample.admitted as f64,
            );
            // Last observed apply-time staleness of the epoch log's
            // speculative probes (0 under the barrier modes, which never
            // score ahead of an apply).
            self.registry.gauge_set(
                &labeled("fleet_shard_epoch_lag", shard_label),
                epoch_lags[s] as f64,
            );
            self.series[s].push(t, sample);
        }
    }

    /// Builds the public snapshot: the registry (cloned), with absolute
    /// totals overlaid from the structures that own them — the probe
    /// memo, every shard's plan cache, and the wall-latency histograms
    /// the run measured unconditionally.
    pub(crate) fn snapshot<O: ThroughputOracle>(
        &self,
        probe_memo: &ProbeMemo,
        shards: &[Shard<'_, O>],
        placement_wall: Option<&Histogram>,
        evacuation_wall: Option<&Histogram>,
    ) -> Option<TelemetrySnapshot> {
        if !self.spec.enabled {
            return None;
        }
        let mut registry = self.registry.clone();
        let memo = probe_memo.stats();
        registry.counter_set("fleet_probe_memo_hits_total", memo.hits);
        registry.counter_set("fleet_probe_memo_misses_total", memo.misses);
        registry.gauge_set("fleet_probe_memo_entries", probe_memo.len() as f64);
        let mut plan = rankmap_telemetry::MemoStats::new();
        for shard in shards {
            let s = shard.mapper.manager().plan_cache_stats();
            plan.hits += s.hits;
            plan.misses += s.misses;
        }
        registry.counter_set("fleet_plan_cache_hits_total", plan.hits);
        registry.counter_set("fleet_plan_cache_misses_total", plan.misses);
        if let Some(h) = placement_wall {
            registry.histogram_mut("fleet_placement_wall_seconds").merge(h);
        }
        if let Some(h) = evacuation_wall {
            registry.histogram_mut("fleet_evacuation_wall_seconds").merge(h);
        }
        Some(TelemetrySnapshot {
            registry,
            recorder: self.recorder.clone(),
            series: self.series.iter().map(|r| r.iter().cloned().collect()).collect(),
        })
    }
}

/// A point-in-time view of everything the fleet's telemetry collected.
///
/// Produced by [`crate::FleetRuntime::telemetry`] mid-setup and carried
/// on [`crate::FleetOutcome::telemetry`] after a run (`None` when
/// telemetry was disabled).
#[derive(Debug, Clone)]
pub struct TelemetrySnapshot {
    /// Counters, gauges, and histograms — export with
    /// [`Registry::to_prometheus`] / [`Registry::to_jsonl`].
    pub registry: Registry,
    /// The flight recorder's retained window (`recorder.to_jsonl()` for
    /// the JSONL export; `dropped()` reports truncation honestly).
    pub recorder: FlightRecorder,
    /// Per-shard sampled time series, oldest point first.
    pub series: Vec<Vec<(f64, ShardSample)>>,
}

impl TelemetrySnapshot {
    /// The registry in Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        self.registry.to_prometheus()
    }

    /// Registry metrics as JSON Lines.
    pub fn to_jsonl(&self) -> String {
        self.registry.to_jsonl()
    }

    /// The flight recorder's retained records as JSON Lines.
    pub fn flight_jsonl(&self) -> String {
        self.recorder.to_jsonl()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_defaults_off_and_builders_compose() {
        let spec = TelemetrySpec::default();
        assert!(!spec.enabled && !spec.wall_clock);
        let on = TelemetrySpec::on();
        assert!(on.enabled && !on.wall_clock);
        assert!(TelemetrySpec::on().with_wall_clock().wall_clock);
    }

    #[test]
    fn every_stage_key_is_static_and_distinct() {
        let stages = [
            stage::PROBE_BUILD,
            stage::FUSED_SCORING,
            stage::APPLY,
            stage::REMAP,
            stage::REBALANCE_SCAN,
            stage::EVACUATION,
            stage::INDEX_REFILE,
            stage::SPECULATE,
            stage::APPLY_PREPARE,
            stage::APPLY_COMMIT,
        ];
        let keys: std::collections::BTreeSet<&str> =
            stages.iter().map(|s| entered_key(s)).collect();
        assert_eq!(keys.len(), stages.len(), "stage keys must not collide");
        for key in keys {
            assert!(key.starts_with("fleet_stage_entered_total{stage=\""));
        }
    }

    #[test]
    fn disabled_collector_is_inert() {
        let mut t = FleetTelemetry::new(TelemetrySpec::default(), 2, 30.0);
        assert!(!t.enabled());
        let timer = t.stage(stage::APPLY);
        t.finish(timer);
        t.count("fleet_admitted_total", 3);
        assert_eq!(t.record(0.0, "admit", None, vec![]), None);
        assert_eq!(t.registry, Registry::new());
        assert!(t.recorder.is_empty());
        assert!(t.series.is_empty());
    }

    #[test]
    fn enabled_collector_counts_stages_and_records() {
        let mut t = FleetTelemetry::new(TelemetrySpec::on(), 1, 30.0);
        let timer = t.stage(stage::PROBE_BUILD);
        t.finish(timer);
        let timer = t.stage(stage::PROBE_BUILD);
        t.finish(timer);
        assert_eq!(t.registry.counter(entered_key(stage::PROBE_BUILD)), 2);
        // wall_clock off: no wall histogram despite the finished timers.
        assert!(t
            .registry
            .histogram("stage_wall_seconds{stage=\"probe_build\"}")
            .is_none());
        let seq = t.record(1.0, "admit", None, vec![("shard", "0".into())]);
        assert_eq!(seq, Some(0));
    }
}
