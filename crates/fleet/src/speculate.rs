//! Speculative placement probes for the barrier-free epoch-log executor.
//!
//! Under [`crate::Parallelism::Async`] the executor pulls a *window* of
//! the ordered event log ahead of the apply cursor and scores every
//! buffered arrival against the fleet's **current** shard snapshots in
//! one parallel fan — before the intervening events have applied. Each
//! speculative probe is stamped with the shard's epoch counter (the
//! PR 7 index staleness signal) and its placement class key, so the
//! apply-time validation in `crate::placement` can prove the snapshot it
//! was scored against is still — or again — the live one:
//!
//! * `lag == 0` (epoch unchanged): the snapshot *is* the live state; the
//!   probe is reused as-is.
//! * `0 < lag <= max_epoch_lag`: the shard changed, but the class key
//!   pins every input of `build_probe` — an equal key means the shard
//!   returned to a state that builds the bit-identical probe, so the
//!   stale entry **revalidates** and is reused.
//! * key mismatch, or `lag > max_epoch_lag`: the entry expired; the
//!   probe is rebuilt against the fresh snapshot (the fallback re-probe).
//!
//! Every path hands the downstream fold/argmax a probe bit-identical to
//! the one a fresh build would produce, which is the whole determinism
//! argument: `Async{workers, max_epoch_lag}` places exactly like
//! `Sequential` for any worker count and lag bound (property-tested in
//! `tests/async_exec.rs`).
//!
//! The one `build_probe` input the class key deliberately omits is the
//! mapper's priority mode (`SetPriorities` is a fleet-wide broadcast, so
//! the mode never differs *between* shards — but it does differ *across
//! time*). The executor therefore flushes this cache whenever a
//! `SetPriorities` event applies; entries never survive a mode change.

use crate::load::RequestId;
use crate::placement::Probe;
use std::collections::HashMap;

/// One speculative probe: the scored snapshot's identity (epoch + class
/// key) plus the probe built against it (`None` when the snapshot was
/// down or at capacity — also a reusable answer, since the class key
/// pins it).
pub(crate) struct SpecEntry {
    pub(crate) probe: Option<Probe>,
    /// The shard's epoch at speculation time.
    pub(crate) epoch: u64,
    /// The shard's placement class key at speculation time (`None` while
    /// down, mirroring `Shard::placement_class_key`).
    pub(crate) class_key: Option<Vec<u8>>,
}

/// Per-shard outcome of consulting the speculation cache during one
/// admission — merged serially (in shard order) into telemetry counters
/// and the per-shard `epoch_lag` gauges, strictly off the decision path.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SpecStat {
    /// An entry existed for this shard and was consulted.
    pub(crate) consulted: bool,
    /// How many epochs the entry lagged the live shard state.
    pub(crate) lag: u64,
    /// The entry's probe was reused (fresh, or stale-but-revalidated).
    pub(crate) reused: bool,
    /// The stale entry was checked against the live class key.
    pub(crate) revalidated: bool,
    /// The entry expired (failed validation or exceeded the lag bound)
    /// and the probe was rebuilt against the fresh snapshot.
    pub(crate) refreshed: bool,
    /// Speculative work that bought nothing: an entry existed but its
    /// probe was never reused — it expired (`refreshed`), or admission
    /// skipped the shard entirely (down, at capacity, or masked out as a
    /// non-representative after the index refresh). Feeds
    /// `fleet_spec_probes_wasted_total`, the denominator-side of the
    /// speculation waste ratio the `fleet_async` bench reports.
    pub(crate) wasted: bool,
}

/// The executor-owned store of speculative probes: one entry per
/// `(arrival, shard)` pair of the current lookahead window, taken (and
/// thereby consumed) when the arrival's admission barrier runs.
#[derive(Default)]
pub(crate) struct SpeculationCache {
    entries: HashMap<RequestId, Vec<Option<SpecEntry>>>,
}

impl SpeculationCache {
    /// Files the speculative probes of one buffered arrival
    /// (`entries[s]` is shard `s`'s entry; `None` for shards the
    /// speculation fan skipped, e.g. non-representatives under indexed
    /// placement).
    pub(crate) fn insert(&mut self, request: RequestId, entries: Vec<Option<SpecEntry>>) {
        self.entries.insert(request, entries);
    }

    /// Removes and returns the arrival's entries — each admission
    /// consumes its speculation exactly once (retries re-probe fresh).
    pub(crate) fn take(&mut self, request: &RequestId) -> Option<Vec<Option<SpecEntry>>> {
        self.entries.remove(request)
    }

    /// Drops every entry, returning how many filed per-shard entries
    /// were discarded unconsumed. Called when a `SetPriorities` event
    /// applies: the priority mode is a `build_probe` input the class key
    /// cannot see, so no pre-rotation probe may survive it. The count
    /// feeds `fleet_spec_probes_wasted_total` — a flush is pure
    /// speculation waste.
    pub(crate) fn flush(&mut self) -> u64 {
        let dropped = self
            .entries
            .values()
            .map(|cells| cells.iter().filter(|c| c.is_some()).count() as u64)
            .sum();
        self.entries.clear();
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_consumes_and_flush_clears() {
        let mut cache = SpeculationCache::default();
        let request = RequestId::new(7);
        cache.insert(
            request,
            vec![Some(SpecEntry { probe: None, epoch: 3, class_key: None }), None],
        );
        let taken = cache.take(&request).expect("filed");
        assert_eq!(taken.len(), 2);
        assert!(taken[0].as_ref().is_some_and(|e| e.epoch == 3));
        assert!(cache.take(&request).is_none(), "consumed exactly once");
        cache.insert(
            request,
            vec![None, Some(SpecEntry { probe: None, epoch: 0, class_key: None })],
        );
        assert_eq!(cache.flush(), 1, "flush reports the filed entries it wasted");
        assert!(cache.take(&request).is_none(), "flush drops everything");
        assert_eq!(cache.flush(), 0, "an empty cache wastes nothing");
    }
}
