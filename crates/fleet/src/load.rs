//! Trace-driven load generation for a fleet of device shards.
//!
//! [`generate`] turns a [`LoadSpec`] into a sorted, deterministic stream
//! of [`FleetEvent`]s: arrivals drawn from a configurable
//! [`ArrivalProcess`] (Poisson, bursty on/off, or diurnal), exponential
//! lifetimes, and optional fleet-wide priority churn — the same
//! primitives as the per-board scenario engine
//! (`rankmap_core::scenario`), lifted to fleet scale. The `k`-th arrival
//! of a stream owns [`RequestId::new`]`(k)`, so departures always name a
//! request that arrived earlier; streams are reproducible bit-for-bit
//! from the seed, which is what makes trace record/replay
//! ([`crate::trace`]) exact.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rankmap_core::priority::PriorityMode;
use rankmap_core::scenario::{exponential, mix_pool, MixProfile};
use rankmap_models::ModelId;
use std::fmt;

/// Fleet-level identity of one submitted DNN instance, assigned in
/// arrival order across the whole fleet (the `k`-th
/// [`FleetEvent::Arrive`] owns ordinal `k`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(u64);

impl RequestId {
    /// Creates a request id (the `k`-th fleet arrival).
    pub fn new(ordinal: u64) -> Self {
        Self(ordinal)
    }

    /// The fleet-wide arrival ordinal.
    pub fn ordinal(self) -> u64 {
        self.0
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One fleet-level event: what the load generator offers the fleet.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetEvent {
    /// A DNN instance is submitted to the fleet. Whether it is admitted —
    /// and onto which shard — is the placement layer's decision.
    Arrive {
        /// Arrival time (seconds).
        at: f64,
        /// Fleet-wide id (the `k`-th arrival of the stream).
        request: RequestId,
        /// The arriving model.
        model: ModelId,
    },
    /// The instance submitted as `request` leaves. Departures of rejected
    /// or unknown requests are ignored by the fleet.
    Depart {
        /// Departure time (seconds).
        at: f64,
        /// The departing request.
        request: RequestId,
    },
    /// A fleet-wide priority change, broadcast to every shard's mapper.
    /// Static vectors apply on shards whose live count matches and fall
    /// back to dynamic ranks elsewhere (the mapper's documented
    /// behaviour).
    SetPriorities {
        /// Time of the change (seconds).
        at: f64,
        /// The new priority mode.
        mode: PriorityMode,
    },
    /// The shard fails: its live instances are triaged by priority and
    /// evacuated onto survivors (or shed) by the executor. Idempotent —
    /// a `ShardDown` on an already-down shard is a no-op.
    ShardDown {
        /// Failure time (seconds).
        at: f64,
        /// The failing shard's index.
        shard: usize,
    },
    /// The shard is repaired: it rejoins the fleet empty, at nominal
    /// speed. Idempotent on an already-up shard.
    ShardUp {
        /// Repair time (seconds).
        at: f64,
        /// The repaired shard's index.
        shard: usize,
    },
    /// The shard's served speed changes to `factor ×` nominal (thermal
    /// throttling, DVFS brown-out); `factor == 1.0` restores full speed.
    /// Under `Platform::scaled`'s potential invariance this derates the
    /// shard's served throughput and placement scores without changing
    /// any mapping decision (see `docs/fleet.md`).
    ShardThrottle {
        /// Throttle time (seconds).
        at: f64,
        /// The throttled shard's index.
        shard: usize,
        /// Served fraction of nominal speed, in `(0, 1]`.
        factor: f64,
    },
}

impl FleetEvent {
    /// The event's timestamp.
    pub fn at(&self) -> f64 {
        match self {
            FleetEvent::Arrive { at, .. }
            | FleetEvent::Depart { at, .. }
            | FleetEvent::SetPriorities { at, .. }
            | FleetEvent::ShardDown { at, .. }
            | FleetEvent::ShardUp { at, .. }
            | FleetEvent::ShardThrottle { at, .. } => *at,
        }
    }
}

/// The arrival process offered to the fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a constant `rate` (per second).
    Poisson {
        /// Expected arrivals per second.
        rate: f64,
    },
    /// Bursty on/off (Markov-modulated Poisson): exponentially-distributed
    /// bursts at `burst_rate` alternate with idle periods at `idle_rate`
    /// (0 for silent idles). The berserker-style "hammer then sleep"
    /// shape.
    OnOff {
        /// Arrival rate inside a burst (per second).
        burst_rate: f64,
        /// Arrival rate between bursts (per second; may be 0).
        idle_rate: f64,
        /// Mean burst duration (seconds).
        mean_burst: f64,
        /// Mean idle duration (seconds).
        mean_idle: f64,
    },
    /// A day-night cycle: a Poisson process whose rate follows
    /// `mean_rate · (1 + amplitude · sin(2πt/period))`, sampled by
    /// thinning. `amplitude` in `[0, 1]`.
    Diurnal {
        /// Time-averaged arrivals per second.
        mean_rate: f64,
        /// Relative swing around the mean (`0` = constant, `1` = the
        /// trough is silent).
        amplitude: f64,
        /// Cycle length in seconds.
        period: f64,
    },
}

impl ArrivalProcess {
    /// Draws the arrival times in `[0, horizon)`, in order.
    fn sample_times<R: Rng + ?Sized>(&self, rng: &mut R, horizon: f64) -> Vec<f64> {
        let mut times = Vec::new();
        match *self {
            ArrivalProcess::Poisson { rate } => {
                assert!(rate > 0.0, "Poisson rate must be positive");
                let mut t = 0.0;
                loop {
                    t += exponential(rng, rate);
                    if t >= horizon {
                        break;
                    }
                    times.push(t);
                }
            }
            ArrivalProcess::OnOff { burst_rate, idle_rate, mean_burst, mean_idle } => {
                assert!(burst_rate > 0.0, "burst rate must be positive");
                assert!(idle_rate >= 0.0, "idle rate cannot be negative");
                assert!(
                    mean_burst > 0.0 && mean_idle > 0.0,
                    "phase durations must be positive"
                );
                let mut t = 0.0;
                let mut bursting = true;
                while t < horizon {
                    let phase_end =
                        t + exponential(rng, 1.0 / if bursting { mean_burst } else { mean_idle });
                    let rate = if bursting { burst_rate } else { idle_rate };
                    if rate > 0.0 {
                        let mut s = t;
                        loop {
                            s += exponential(rng, rate);
                            if s >= phase_end.min(horizon) {
                                break;
                            }
                            times.push(s);
                        }
                    }
                    t = phase_end;
                    bursting = !bursting;
                }
            }
            ArrivalProcess::Diurnal { mean_rate, amplitude, period } => {
                assert!(mean_rate > 0.0, "mean rate must be positive");
                assert!((0.0..=1.0).contains(&amplitude), "amplitude must be in [0, 1]");
                assert!(period > 0.0, "period must be positive");
                // Thinning (Lewis & Shedler): candidates at the peak rate,
                // accepted with probability rate(t)/peak.
                let peak = mean_rate * (1.0 + amplitude);
                let mut t = 0.0;
                loop {
                    t += exponential(rng, peak);
                    if t >= horizon {
                        break;
                    }
                    let rate = mean_rate
                        * (1.0 + amplitude * (2.0 * std::f64::consts::PI * t / period).sin());
                    if rng.gen_range(0.0..1.0) < rate / peak {
                        times.push(t);
                    }
                }
            }
        }
        times
    }

    /// The time-averaged offered arrival rate (per second) — what "fixed
    /// offered load" means when scaling shard counts in the bench.
    pub fn mean_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate } => rate,
            ArrivalProcess::OnOff { burst_rate, idle_rate, mean_burst, mean_idle } => {
                (burst_rate * mean_burst + idle_rate * mean_idle) / (mean_burst + mean_idle)
            }
            ArrivalProcess::Diurnal { mean_rate, .. } => mean_rate,
        }
    }
}

/// Deterministic fault-injection configuration: a seeded renewal process
/// of shard outages (exponential MTBF/MTTR, optionally correlated across
/// shards) plus a seeded stream of thermal-throttle episodes per shard.
///
/// The spec carries its **own seed**, drawn from its own RNG stream, so
/// layering faults into a [`LoadSpec`] never perturbs the arrival
/// process — the faulted and fault-free runs see the identical offered
/// load, which is what makes evacuation-on/off A/B comparisons (the
/// `fleet_chaos` bench) exact.
///
/// Per-shard outage intervals are merged before events are emitted, so
/// the generated stream strictly alternates
/// [`FleetEvent::ShardDown`]/[`FleetEvent::ShardUp`] per shard.
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// Number of shards faults are generated for (indices `0..shards`).
    pub shards: usize,
    /// Mean time between failures per shard (seconds, exponential);
    /// `0.0` disables outages.
    pub mtbf: f64,
    /// Mean time to repair (seconds, exponential).
    pub mttr: f64,
    /// Probability that each *other* shard joins an outage at the same
    /// instant (correlated rack/power failures), in `[0, 1]`.
    pub correlation: f64,
    /// Poisson rate of throttle episodes per shard (per second); `0.0`
    /// disables throttling.
    pub throttle_rate: f64,
    /// Throttle factors are drawn uniformly from this `(min, max)` range
    /// of served-speed fractions, each in `(0, 1]`.
    pub throttle_range: (f64, f64),
    /// Mean throttle-episode duration (seconds, exponential); the episode
    /// ends with a restoring `factor = 1.0` event.
    pub mean_throttle: f64,
    /// The fault stream's own RNG seed (independent of the load seed).
    pub seed: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self {
            shards: 1,
            mtbf: 900.0,
            mttr: 120.0,
            correlation: 0.0,
            throttle_rate: 0.0,
            throttle_range: (0.4, 0.9),
            mean_throttle: 180.0,
            seed: 0,
        }
    }
}

impl FaultSpec {
    /// Expands the spec into a sorted fault-event stream over
    /// `[0, horizon)`.
    ///
    /// Guarantees: per shard, `ShardDown`/`ShardUp` strictly alternate
    /// (overlapping draws — including correlated joins — are merged into
    /// one outage); an outage running past the horizon emits no
    /// `ShardUp`; throttle episodes never overlap on one shard and each
    /// in-horizon episode end restores `factor = 1.0`. The stream is a
    /// pure function of the spec and horizon.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`, a rate/duration is negative, the
    /// correlation is outside `[0, 1]`, or the throttle range is not
    /// within `(0, 1]` with `min <= max`.
    pub fn generate(&self, horizon: f64) -> Vec<FleetEvent> {
        assert!(self.shards > 0, "fault spec needs at least one shard");
        assert!(horizon > 0.0, "horizon must be positive");
        assert!(
            self.mtbf >= 0.0 && self.mttr >= 0.0 && self.mean_throttle >= 0.0,
            "fault timescales cannot be negative"
        );
        assert!(
            (0.0..=1.0).contains(&self.correlation),
            "outage correlation must be in [0, 1]"
        );
        let (lo, hi) = self.throttle_range;
        assert!(
            0.0 < lo && lo <= hi && hi <= 1.0,
            "throttle factors must satisfy 0 < min <= max <= 1"
        );
        assert!(self.throttle_rate >= 0.0, "throttle rate cannot be negative");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut events = Vec::new();

        // Base outages: one alternating up/down renewal walk per shard,
        // generated shard by shard from the single spec RNG (a fixed
        // draw order, so the stream is deterministic).
        let mut outages: Vec<Vec<(f64, f64)>> = vec![Vec::new(); self.shards];
        if self.mtbf > 0.0 && self.mttr > 0.0 {
            for intervals in outages.iter_mut() {
                let mut t = 0.0;
                loop {
                    t += exponential(&mut rng, 1.0 / self.mtbf);
                    if t >= horizon {
                        break;
                    }
                    let end = t + exponential(&mut rng, 1.0 / self.mttr);
                    intervals.push((t, end));
                    t = end;
                }
            }
            // Correlated joins: every base failure, visited in (time,
            // source-shard) order, pulls each other shard into the outage
            // with probability `correlation` — its repair drawn
            // independently, so a rack event fans out but un-fans
            // raggedly, like real recoveries.
            if self.correlation > 0.0 {
                let mut base: Vec<(f64, usize)> = outages
                    .iter()
                    .enumerate()
                    .flat_map(|(s, iv)| iv.iter().map(move |&(start, _)| (start, s)))
                    .collect();
                base.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                for (start, source) in base {
                    for (joined, shard_outages) in outages.iter_mut().enumerate() {
                        if joined == source {
                            continue;
                        }
                        if rng.gen_range(0.0..1.0) < self.correlation {
                            let end = start + exponential(&mut rng, 1.0 / self.mttr);
                            shard_outages.push((start, end));
                        }
                    }
                }
            }
        }
        for (s, intervals) in outages.iter_mut().enumerate() {
            // Merge overlapping draws so the emitted stream strictly
            // alternates Down/Up per shard.
            intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut merged: Vec<(f64, f64)> = Vec::new();
            for &(start, end) in intervals.iter() {
                match merged.last_mut() {
                    Some(last) if start <= last.1 => last.1 = last.1.max(end),
                    _ => merged.push((start, end)),
                }
            }
            for (start, end) in merged {
                events.push(FleetEvent::ShardDown { at: start, shard: s });
                if end < horizon {
                    events.push(FleetEvent::ShardUp { at: end, shard: s });
                }
            }
        }

        // Throttle episodes: per shard, non-overlapping by construction
        // (the walk resumes at each episode's end).
        if self.throttle_rate > 0.0 && self.mean_throttle > 0.0 {
            for s in 0..self.shards {
                let mut t = 0.0;
                loop {
                    t += exponential(&mut rng, self.throttle_rate);
                    if t >= horizon {
                        break;
                    }
                    let factor =
                        if lo == hi { lo } else { rng.gen_range(lo..hi) };
                    let end = t + exponential(&mut rng, 1.0 / self.mean_throttle);
                    events.push(FleetEvent::ShardThrottle { at: t, shard: s, factor });
                    if end < horizon {
                        events.push(FleetEvent::ShardThrottle {
                            at: end,
                            shard: s,
                            factor: 1.0,
                        });
                    }
                    t = end;
                }
            }
        }
        events.sort_by(|a, b| a.at().total_cmp(&b.at()));
        events
    }
}

/// Load-generation configuration.
///
/// # Example
///
/// A bursty stream is fully determined by its spec — same seed, same
/// events, which is what makes trace replay exact:
///
/// ```
/// use rankmap_fleet::{generate, ArrivalProcess, FleetEvent, LoadSpec};
///
/// let spec = LoadSpec {
///     horizon: 300.0,
///     process: ArrivalProcess::OnOff {
///         burst_rate: 0.5,
///         idle_rate: 0.0,
///         mean_burst: 20.0,
///         mean_idle: 60.0,
///     },
///     seed: 7,
///     ..Default::default()
/// };
/// let events = generate(&spec);
/// assert_eq!(events, generate(&spec), "generation is deterministic");
/// assert!(events.iter().all(|e| (0.0..spec.horizon).contains(&e.at())));
/// assert!(events.iter().any(|e| matches!(e, FleetEvent::Arrive { .. })));
/// ```
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Stream length in seconds.
    pub horizon: f64,
    /// The arrival process.
    pub process: ArrivalProcess,
    /// Mean DNN lifetime in seconds (exponential); departures past the
    /// horizon are dropped (the instance runs out the stream).
    pub mean_lifetime: f64,
    /// Model pool arrivals draw from (filtered by `mix`).
    pub pool: Vec<ModelId>,
    /// Heavy/light filter over the pool.
    pub mix: MixProfile,
    /// Poisson rate of fleet-wide priority churn (events per second);
    /// each rotates the critical rank among the offered-live count or
    /// reverts to dynamic ranks.
    pub priority_churn_rate: f64,
    /// RNG seed (generation is deterministic given the seed).
    pub seed: u64,
    /// Optional fault layer: shard outages and throttle episodes
    /// generated from the fault spec's *own* seed and merged into the
    /// stream. `None` (the default) offers the identical fault-free
    /// stream as before — layering faults never perturbs the arrivals.
    pub faults: Option<FaultSpec>,
}

impl Default for LoadSpec {
    fn default() -> Self {
        Self {
            horizon: 600.0,
            process: ArrivalProcess::Poisson { rate: 1.0 / 30.0 },
            mean_lifetime: 240.0,
            pool: ModelId::paper_pool(),
            mix: MixProfile::Mixed,
            priority_churn_rate: 0.0,
            seed: 0,
            faults: None,
        }
    }
}

/// Generates a sorted, valid fleet event stream for a [`LoadSpec`].
///
/// Guarantees: event times are non-decreasing and within `[0, horizon)`;
/// every departure names a request that arrived strictly earlier and
/// departs exactly once; request ids are dense in arrival order.
///
/// # Panics
///
/// Panics if the (mix-filtered) pool is empty, `horizon <= 0`, or the
/// process parameters are invalid.
pub fn generate(spec: &LoadSpec) -> Vec<FleetEvent> {
    assert!(spec.horizon > 0.0, "horizon must be positive");
    let pool = mix_pool(&spec.pool, spec.mix);
    assert!(!pool.is_empty(), "load pool must not be empty");
    let mut rng = StdRng::seed_from_u64(spec.seed);

    let times = spec.process.sample_times(&mut rng, spec.horizon);
    let mut events: Vec<FleetEvent> = Vec::with_capacity(times.len() * 2);
    let mut departures: Vec<(f64, RequestId)> = Vec::new();
    for (k, &at) in times.iter().enumerate() {
        let request = RequestId::new(k as u64);
        let model = pool[rng.gen_range(0..pool.len())];
        events.push(FleetEvent::Arrive { at, request, model });
        if spec.mean_lifetime > 0.0 {
            let leave = at + exponential(&mut rng, 1.0 / spec.mean_lifetime);
            if leave < spec.horizon {
                departures.push((leave, request));
            }
        }
    }
    for &(at, request) in &departures {
        events.push(FleetEvent::Depart { at, request });
    }

    if spec.priority_churn_rate > 0.0 {
        // Arrival times are already sorted; sort departure times once so
        // each churn event's live count is two binary searches, not a
        // scan of the whole stream.
        let mut departure_times: Vec<f64> = departures.iter().map(|&(dt, _)| dt).collect();
        departure_times.sort_by(f64::total_cmp);
        let mut ct = 0.0;
        let mut rotation = 0usize;
        loop {
            ct += exponential(&mut rng, spec.priority_churn_rate);
            if ct >= spec.horizon {
                break;
            }
            let live = times.partition_point(|&at| at <= ct)
                - departure_times.partition_point(|&dt| dt <= ct);
            let mode = if live == 0 || rotation % (live + 1) == live {
                PriorityMode::Dynamic
            } else {
                PriorityMode::critical(live, rotation % live)
            };
            rotation += 1;
            events.push(FleetEvent::SetPriorities { at: ct, mode });
        }
    }

    if let Some(faults) = &spec.faults {
        // The fault layer draws from its own seeded RNG, so the arrival
        // stream above is byte-identical with or without it.
        events.extend(faults.generate(spec.horizon));
    }

    events.sort_by(|a, b| a.at().total_cmp(&b.at()));
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrivals_of(events: &[FleetEvent]) -> Vec<f64> {
        events
            .iter()
            .filter_map(|e| match e {
                FleetEvent::Arrive { at, .. } => Some(*at),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = LoadSpec {
            process: ArrivalProcess::OnOff {
                burst_rate: 0.5,
                idle_rate: 0.0,
                mean_burst: 30.0,
                mean_idle: 60.0,
            },
            priority_churn_rate: 1.0 / 120.0,
            ..Default::default()
        };
        assert_eq!(generate(&spec), generate(&spec));
        let other = LoadSpec { seed: 1, ..spec.clone() };
        assert_ne!(generate(&other), generate(&spec));
    }

    #[test]
    fn events_sorted_and_departures_valid() {
        for process in [
            ArrivalProcess::Poisson { rate: 0.1 },
            ArrivalProcess::OnOff {
                burst_rate: 0.8,
                idle_rate: 0.02,
                mean_burst: 20.0,
                mean_idle: 90.0,
            },
            ArrivalProcess::Diurnal { mean_rate: 0.1, amplitude: 0.8, period: 300.0 },
        ] {
            let spec = LoadSpec { process, seed: 7, ..Default::default() };
            let events = generate(&spec);
            let mut last = 0.0f64;
            let mut arrived = 0u64;
            let mut departed = std::collections::HashSet::new();
            for e in &events {
                assert!(e.at() >= last, "sorted");
                assert!((0.0..spec.horizon).contains(&e.at()));
                last = e.at();
                match e {
                    FleetEvent::Arrive { request, .. } => {
                        assert_eq!(request.ordinal(), arrived, "dense arrival ids");
                        arrived += 1;
                    }
                    FleetEvent::Depart { request, .. } => {
                        assert!(request.ordinal() < arrived, "departs after arrival");
                        assert!(departed.insert(*request), "departs once");
                    }
                    _ => {}
                }
            }
            assert!(arrived > 0, "the stream must offer load");
        }
    }

    #[test]
    fn bursty_load_clusters_arrivals() {
        // Same mean rate, bursty vs Poisson: the on/off stream must have a
        // far higher variance of inter-arrival gaps.
        let horizon = 20_000.0;
        let poisson = LoadSpec {
            horizon,
            process: ArrivalProcess::Poisson { rate: 0.05 },
            mean_lifetime: 0.0,
            seed: 3,
            ..Default::default()
        };
        let bursty = LoadSpec {
            horizon,
            // burst 0.245/s for 50s, idle 0.0025/s for 190s → ~0.053/s mean.
            process: ArrivalProcess::OnOff {
                burst_rate: 0.245,
                idle_rate: 0.0025,
                mean_burst: 50.0,
                mean_idle: 190.0,
            },
            mean_lifetime: 0.0,
            seed: 3,
            ..Default::default()
        };
        let cv2 = |events: &[FleetEvent]| {
            let times = arrivals_of(events);
            let gaps: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var =
                gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
            var / (mean * mean)
        };
        let p = cv2(&generate(&poisson));
        let b = cv2(&generate(&bursty));
        assert!(
            b > 2.0 * p,
            "bursty arrivals must be overdispersed vs Poisson: CV² {b:.2} vs {p:.2}"
        );
    }

    #[test]
    fn diurnal_peak_outdraws_trough() {
        let period = 1_000.0;
        let spec = LoadSpec {
            horizon: 50_000.0,
            process: ArrivalProcess::Diurnal { mean_rate: 0.05, amplitude: 0.9, period },
            mean_lifetime: 0.0,
            seed: 5,
            ..Default::default()
        };
        let times = arrivals_of(&generate(&spec));
        // First half of each cycle is the crest of the sine, second the
        // trough.
        let (peak, trough): (Vec<&f64>, Vec<&f64>) =
            times.iter().partition(|&&t| (t % period) < period / 2.0);
        assert!(
            peak.len() as f64 > 2.0 * trough.len() as f64,
            "the crest must dominate: {} vs {}",
            peak.len(),
            trough.len()
        );
    }

    #[test]
    fn fault_layer_never_perturbs_the_arrival_stream() {
        // The A/B foundation of the chaos bench: the faulted stream's
        // non-fault events are byte-identical to the fault-free stream.
        let clean = LoadSpec { seed: 9, ..Default::default() };
        let faulted = LoadSpec {
            faults: Some(FaultSpec {
                shards: 4,
                mtbf: 150.0,
                mttr: 60.0,
                correlation: 0.3,
                throttle_rate: 1.0 / 120.0,
                ..Default::default()
            }),
            ..clean.clone()
        };
        let strip = |events: Vec<FleetEvent>| -> Vec<FleetEvent> {
            events
                .into_iter()
                .filter(|e| {
                    !matches!(
                        e,
                        FleetEvent::ShardDown { .. }
                            | FleetEvent::ShardUp { .. }
                            | FleetEvent::ShardThrottle { .. }
                    )
                })
                .collect()
        };
        assert_eq!(strip(generate(&faulted)), generate(&clean));
        assert_ne!(generate(&faulted), generate(&clean), "faults actually fired");
    }

    #[test]
    fn outages_alternate_down_up_per_shard() {
        let spec = FaultSpec {
            shards: 6,
            mtbf: 80.0,
            mttr: 40.0,
            correlation: 0.5,
            ..Default::default()
        };
        let horizon = 2_000.0;
        let events = spec.generate(horizon);
        assert_eq!(events, spec.generate(horizon), "fault generation is deterministic");
        let mut down = vec![false; spec.shards];
        let mut last = 0.0f64;
        let mut outages = 0;
        for e in &events {
            assert!(e.at() >= last, "sorted");
            assert!((0.0..horizon).contains(&e.at()));
            last = e.at();
            match *e {
                FleetEvent::ShardDown { shard, .. } => {
                    assert!(!down[shard], "down events strictly alternate with up");
                    down[shard] = true;
                    outages += 1;
                }
                FleetEvent::ShardUp { shard, .. } => {
                    assert!(down[shard], "up only after down");
                    down[shard] = false;
                }
                _ => panic!("outage-only spec emitted {e:?}"),
            }
        }
        assert!(outages > spec.shards, "the walk must produce repeated outages");
    }

    #[test]
    fn correlation_couples_outage_starts() {
        let base = FaultSpec { shards: 8, mtbf: 300.0, mttr: 30.0, ..Default::default() };
        let starts = |correlation: f64| -> Vec<f64> {
            let spec = FaultSpec { correlation, ..base.clone() };
            spec.generate(5_000.0)
                .iter()
                .filter_map(|e| match e {
                    FleetEvent::ShardDown { at, .. } => Some(*at),
                    _ => None,
                })
                .collect()
        };
        // Count multi-shard outages: down events sharing one timestamp.
        let shared = |starts: &[f64]| {
            starts.windows(2).filter(|w| w[0] == w[1]).count()
        };
        let independent = starts(0.0);
        let correlated = starts(0.8);
        assert_eq!(shared(&independent), 0, "independent outages never share an instant");
        assert!(
            shared(&correlated) > 3,
            "correlated outages must pull other shards down at the same instant"
        );
    }

    #[test]
    fn throttle_episodes_bound_factors_and_restore() {
        let spec = FaultSpec {
            shards: 3,
            mtbf: 0.0, // outages off: throttles only
            throttle_rate: 1.0 / 100.0,
            throttle_range: (0.5, 0.8),
            mean_throttle: 60.0,
            ..Default::default()
        };
        let events = spec.generate(4_000.0);
        let mut throttled = vec![false; spec.shards];
        let mut episodes = 0;
        for e in &events {
            let FleetEvent::ShardThrottle { shard, factor, .. } = *e else {
                panic!("throttle-only spec emitted {e:?}");
            };
            if factor == 1.0 {
                assert!(throttled[shard], "a restore must close an open episode");
                throttled[shard] = false;
            } else {
                assert!((0.5..0.8).contains(&factor), "factor within the range: {factor}");
                assert!(!throttled[shard], "episodes never overlap on one shard");
                throttled[shard] = true;
                episodes += 1;
            }
        }
        assert!(episodes >= 3, "the walk must produce real episodes: {episodes}");
    }

    #[test]
    fn mean_rate_matches_offered_load() {
        let p = ArrivalProcess::OnOff {
            burst_rate: 0.5,
            idle_rate: 0.1,
            mean_burst: 10.0,
            mean_idle: 30.0,
        };
        assert!((p.mean_rate() - (0.5 * 10.0 + 0.1 * 30.0) / 40.0).abs() < 1e-12);
        assert_eq!(ArrivalProcess::Poisson { rate: 0.2 }.mean_rate(), 0.2);
    }
}
