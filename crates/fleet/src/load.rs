//! Trace-driven load generation for a fleet of device shards.
//!
//! [`generate`] turns a [`LoadSpec`] into a sorted, deterministic stream
//! of [`FleetEvent`]s: arrivals drawn from a configurable
//! [`ArrivalProcess`] (Poisson, bursty on/off, or diurnal), exponential
//! lifetimes, and optional fleet-wide priority churn — the same
//! primitives as the per-board scenario engine
//! (`rankmap_core::scenario`), lifted to fleet scale. The `k`-th arrival
//! of a stream owns [`RequestId::new`]`(k)`, so departures always name a
//! request that arrived earlier; streams are reproducible bit-for-bit
//! from the seed, which is what makes trace record/replay
//! ([`crate::trace`]) exact.
//!
//! On top of the base process sit three optional layers, each drawing
//! from its **own** seed so enabling one never perturbs the others:
//! [`Popularity::Zipf`] model skew, [`FlashSpec`] flash crowds, and
//! [`TenantSpec`] correlated multi-tenant bursts.
//!
//! For million-instance horizons, [`LoadStream`] is the pull-based twin
//! of [`generate`]: it yields the byte-identical event sequence without
//! ever materializing it, holding only O(live instances + burst
//! episodes) state regardless of horizon length.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rankmap_core::priority::PriorityMode;
use rankmap_core::scenario::{exponential, mix_pool, MixProfile};
use rankmap_models::ModelId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Fleet-level identity of one submitted DNN instance, assigned in
/// arrival order across the whole fleet (the `k`-th
/// [`FleetEvent::Arrive`] owns ordinal `k`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(u64);

impl RequestId {
    /// Creates a request id (the `k`-th fleet arrival).
    pub fn new(ordinal: u64) -> Self {
        Self(ordinal)
    }

    /// The fleet-wide arrival ordinal.
    pub fn ordinal(self) -> u64 {
        self.0
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One fleet-level event: what the load generator offers the fleet.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetEvent {
    /// A DNN instance is submitted to the fleet. Whether it is admitted —
    /// and onto which shard — is the placement layer's decision.
    Arrive {
        /// Arrival time (seconds).
        at: f64,
        /// Fleet-wide id (the `k`-th arrival of the stream).
        request: RequestId,
        /// The arriving model.
        model: ModelId,
    },
    /// The instance submitted as `request` leaves. Departures of rejected
    /// or unknown requests are ignored by the fleet.
    Depart {
        /// Departure time (seconds).
        at: f64,
        /// The departing request.
        request: RequestId,
    },
    /// A fleet-wide priority change, broadcast to every shard's mapper.
    /// Static vectors apply on shards whose live count matches and fall
    /// back to dynamic ranks elsewhere (the mapper's documented
    /// behaviour).
    SetPriorities {
        /// Time of the change (seconds).
        at: f64,
        /// The new priority mode.
        mode: PriorityMode,
    },
    /// The shard fails: its live instances are triaged by priority and
    /// evacuated onto survivors (or shed) by the executor. Idempotent —
    /// a `ShardDown` on an already-down shard is a no-op.
    ShardDown {
        /// Failure time (seconds).
        at: f64,
        /// The failing shard's index.
        shard: usize,
    },
    /// The shard is repaired: it rejoins the fleet empty, at nominal
    /// speed. Idempotent on an already-up shard.
    ShardUp {
        /// Repair time (seconds).
        at: f64,
        /// The repaired shard's index.
        shard: usize,
    },
    /// The shard's served speed changes to `factor ×` nominal (thermal
    /// throttling, DVFS brown-out); `factor == 1.0` restores full speed.
    /// Under `Platform::scaled`'s potential invariance this derates the
    /// shard's served throughput and placement scores without changing
    /// any mapping decision (see `docs/fleet.md`).
    ShardThrottle {
        /// Throttle time (seconds).
        at: f64,
        /// The throttled shard's index.
        shard: usize,
        /// Served fraction of nominal speed, in `(0, 1]`.
        factor: f64,
    },
}

impl FleetEvent {
    /// The event's timestamp.
    pub fn at(&self) -> f64 {
        match self {
            FleetEvent::Arrive { at, .. }
            | FleetEvent::Depart { at, .. }
            | FleetEvent::SetPriorities { at, .. }
            | FleetEvent::ShardDown { at, .. }
            | FleetEvent::ShardUp { at, .. }
            | FleetEvent::ShardThrottle { at, .. } => *at,
        }
    }
}

/// The arrival process offered to the fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a constant `rate` (per second).
    Poisson {
        /// Expected arrivals per second.
        rate: f64,
    },
    /// Bursty on/off (Markov-modulated Poisson): exponentially-distributed
    /// bursts at `burst_rate` alternate with idle periods at `idle_rate`
    /// (0 for silent idles). The berserker-style "hammer then sleep"
    /// shape.
    OnOff {
        /// Arrival rate inside a burst (per second).
        burst_rate: f64,
        /// Arrival rate between bursts (per second; may be 0).
        idle_rate: f64,
        /// Mean burst duration (seconds).
        mean_burst: f64,
        /// Mean idle duration (seconds).
        mean_idle: f64,
    },
    /// A day-night cycle: a Poisson process whose rate follows
    /// `mean_rate · (1 + amplitude · sin(2πt/period))`, sampled by
    /// thinning. `amplitude` in `[0, 1]`.
    Diurnal {
        /// Time-averaged arrivals per second.
        mean_rate: f64,
        /// Relative swing around the mean (`0` = constant, `1` = the
        /// trough is silent).
        amplitude: f64,
        /// Cycle length in seconds.
        period: f64,
    },
}

impl ArrivalProcess {
    /// Draws the arrival times in `[0, horizon)`, in order.
    fn sample_times<R: Rng + ?Sized>(&self, rng: &mut R, horizon: f64) -> Vec<f64> {
        let mut times = Vec::new();
        match *self {
            ArrivalProcess::Poisson { rate } => {
                assert!(rate > 0.0, "Poisson rate must be positive");
                let mut t = 0.0;
                loop {
                    t += exponential(rng, rate);
                    if t >= horizon {
                        break;
                    }
                    times.push(t);
                }
            }
            ArrivalProcess::OnOff { burst_rate, idle_rate, mean_burst, mean_idle } => {
                assert!(burst_rate > 0.0, "burst rate must be positive");
                assert!(idle_rate >= 0.0, "idle rate cannot be negative");
                assert!(
                    mean_burst > 0.0 && mean_idle > 0.0,
                    "phase durations must be positive"
                );
                let mut t = 0.0;
                let mut bursting = true;
                while t < horizon {
                    let phase_end =
                        t + exponential(rng, 1.0 / if bursting { mean_burst } else { mean_idle });
                    let rate = if bursting { burst_rate } else { idle_rate };
                    if rate > 0.0 {
                        let mut s = t;
                        loop {
                            s += exponential(rng, rate);
                            if s >= phase_end.min(horizon) {
                                break;
                            }
                            times.push(s);
                        }
                    }
                    t = phase_end;
                    bursting = !bursting;
                }
            }
            ArrivalProcess::Diurnal { mean_rate, amplitude, period } => {
                assert!(mean_rate > 0.0, "mean rate must be positive");
                assert!((0.0..=1.0).contains(&amplitude), "amplitude must be in [0, 1]");
                assert!(period > 0.0, "period must be positive");
                // Thinning (Lewis & Shedler): candidates at the peak rate,
                // accepted with probability rate(t)/peak.
                let peak = mean_rate * (1.0 + amplitude);
                let mut t = 0.0;
                loop {
                    t += exponential(rng, peak);
                    if t >= horizon {
                        break;
                    }
                    let rate = mean_rate
                        * (1.0 + amplitude * (2.0 * std::f64::consts::PI * t / period).sin());
                    if rng.gen_range(0.0..1.0) < rate / peak {
                        times.push(t);
                    }
                }
            }
        }
        times
    }

    /// The time-averaged offered arrival rate (per second) — what "fixed
    /// offered load" means when scaling shard counts in the bench.
    pub fn mean_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate } => rate,
            ArrivalProcess::OnOff { burst_rate, idle_rate, mean_burst, mean_idle } => {
                (burst_rate * mean_burst + idle_rate * mean_idle) / (mean_burst + mean_idle)
            }
            ArrivalProcess::Diurnal { mean_rate, .. } => mean_rate,
        }
    }
}

/// The lazy twin of [`ArrivalProcess::sample_times`]: walks the identical
/// RNG draw sequence but yields arrival times one at a time instead of
/// materializing the vector. `generate` keeps calling the eager version,
/// so the `LoadStream` ≡ `generate` equivalence test pins this walk
/// byte-for-byte against it.
struct TimeWalk {
    rng: StdRng,
    horizon: f64,
    done: bool,
    state: WalkState,
}

enum WalkState {
    Poisson {
        rate: f64,
        t: f64,
    },
    OnOff {
        burst_rate: f64,
        idle_rate: f64,
        mean_burst: f64,
        mean_idle: f64,
        t: f64,
        bursting: bool,
        /// An open phase mid-arrival-walk: `(phase_end, cursor, rate)`.
        phase: Option<(f64, f64, f64)>,
    },
    Diurnal {
        mean_rate: f64,
        amplitude: f64,
        period: f64,
        peak: f64,
        t: f64,
    },
}

impl TimeWalk {
    /// Starts the walk (same parameter panics as the eager sampler).
    fn new(process: ArrivalProcess, horizon: f64, rng: StdRng) -> Self {
        let state = match process {
            ArrivalProcess::Poisson { rate } => {
                assert!(rate > 0.0, "Poisson rate must be positive");
                WalkState::Poisson { rate, t: 0.0 }
            }
            ArrivalProcess::OnOff { burst_rate, idle_rate, mean_burst, mean_idle } => {
                assert!(burst_rate > 0.0, "burst rate must be positive");
                assert!(idle_rate >= 0.0, "idle rate cannot be negative");
                assert!(
                    mean_burst > 0.0 && mean_idle > 0.0,
                    "phase durations must be positive"
                );
                WalkState::OnOff {
                    burst_rate,
                    idle_rate,
                    mean_burst,
                    mean_idle,
                    t: 0.0,
                    bursting: true,
                    phase: None,
                }
            }
            ArrivalProcess::Diurnal { mean_rate, amplitude, period } => {
                assert!(mean_rate > 0.0, "mean rate must be positive");
                assert!((0.0..=1.0).contains(&amplitude), "amplitude must be in [0, 1]");
                assert!(period > 0.0, "period must be positive");
                WalkState::Diurnal {
                    mean_rate,
                    amplitude,
                    period,
                    peak: mean_rate * (1.0 + amplitude),
                    t: 0.0,
                }
            }
        };
        Self { rng, horizon, done: false, state }
    }

    /// The RNG after the walk completed — positioned exactly where
    /// `sample_times` leaves its caller's RNG. Used by `LoadStream`'s
    /// construction to place the per-arrival and churn RNG clones.
    fn into_rng(self) -> StdRng {
        debug_assert!(self.done, "drain the walk before taking its RNG");
        self.rng
    }
}

impl Iterator for TimeWalk {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        if self.done {
            return None;
        }
        let horizon = self.horizon;
        match &mut self.state {
            WalkState::Poisson { rate, t } => {
                *t += exponential(&mut self.rng, *rate);
                if *t >= horizon {
                    self.done = true;
                    return None;
                }
                Some(*t)
            }
            WalkState::OnOff {
                burst_rate,
                idle_rate,
                mean_burst,
                mean_idle,
                t,
                bursting,
                phase,
            } => {
                loop {
                    if let Some((phase_end, cursor, rate)) = *phase {
                        let next = cursor + exponential(&mut self.rng, rate);
                        if next >= phase_end.min(horizon) {
                            *phase = None;
                            *t = phase_end;
                            *bursting = !*bursting;
                        } else {
                            *phase = Some((phase_end, next, rate));
                            return Some(next);
                        }
                    } else {
                        if *t >= horizon {
                            self.done = true;
                            return None;
                        }
                        let mean = if *bursting { *mean_burst } else { *mean_idle };
                        let phase_end = *t + exponential(&mut self.rng, 1.0 / mean);
                        let rate = if *bursting { *burst_rate } else { *idle_rate };
                        if rate > 0.0 {
                            *phase = Some((phase_end, *t, rate));
                        } else {
                            *t = phase_end;
                            *bursting = !*bursting;
                        }
                    }
                }
            }
            WalkState::Diurnal { mean_rate, amplitude, period, peak, t } => loop {
                *t += exponential(&mut self.rng, *peak);
                if *t >= horizon {
                    self.done = true;
                    return None;
                }
                let rate = *mean_rate
                    * (1.0 + *amplitude * (2.0 * std::f64::consts::PI * *t / *period).sin());
                if self.rng.gen_range(0.0..1.0) < rate / *peak {
                    return Some(*t);
                }
            },
        }
    }
}

/// How arrivals pick a model from the (mix-filtered) pool.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum Popularity {
    /// Every pool model equally likely — the original behaviour (and the
    /// default), drawn with the identical RNG call, so pre-existing specs
    /// produce byte-identical streams.
    #[default]
    Uniform,
    /// Zipf-distributed popularity by pool rank: model `i` (0-based) is
    /// drawn with weight `1 / (i+1)^exponent`. `exponent = 0` degenerates
    /// to uniform weights (via one float draw instead of one integer
    /// draw); ~0.8–1.2 matches the head-heavy skew of real serving
    /// traffic, which is what concentrates shard states and lets the
    /// placement index collapse probes.
    Zipf {
        /// The skew exponent `s ≥ 0`.
        exponent: f64,
    },
}

/// Draws models from a pool under a [`Popularity`] law. Owned (the pool
/// is a handful of ids) so `LoadStream` can carry one without borrows.
struct ModelSampler {
    pool: Vec<ModelId>,
    /// Cumulative normalized Zipf weights; `None` = uniform.
    cdf: Option<Vec<f64>>,
}

impl ModelSampler {
    fn new(pool: &[ModelId], popularity: Popularity) -> Self {
        let cdf = match popularity {
            Popularity::Uniform => None,
            Popularity::Zipf { exponent } => {
                assert!(
                    exponent.is_finite() && exponent >= 0.0,
                    "Zipf exponent must be finite and non-negative"
                );
                let weights: Vec<f64> = (0..pool.len())
                    .map(|i| 1.0 / ((i + 1) as f64).powf(exponent))
                    .collect();
                let total: f64 = weights.iter().sum();
                let mut acc = 0.0;
                Some(
                    weights
                        .iter()
                        .map(|w| {
                            acc += w / total;
                            acc
                        })
                        .collect(),
                )
            }
        };
        Self { pool: pool.to_vec(), cdf }
    }

    /// One model draw — exactly one RNG call either way (uniform keeps
    /// the original integer `gen_range`; Zipf inverts the CDF on one
    /// float draw).
    fn draw(&self, rng: &mut StdRng) -> ModelId {
        match &self.cdf {
            None => self.pool[rng.gen_range(0..self.pool.len())],
            Some(cdf) => {
                let u = rng.gen_range(0.0..1.0);
                let idx = cdf.partition_point(|&c| c <= u).min(self.pool.len() - 1);
                self.pool[idx]
            }
        }
    }
}

/// Flash crowds: a seeded Poisson process of viral episodes, each pouring
/// extra arrivals of **one** model onto the fleet for an exponential
/// duration. Carries its own seed (the [`FaultSpec`] discipline), so
/// layering flash crowds onto a spec never perturbs the base arrivals.
#[derive(Debug, Clone)]
pub struct FlashSpec {
    /// Poisson rate of flash-crowd episodes (per second).
    pub rate: f64,
    /// Mean episode duration (seconds, exponential).
    pub mean_duration: f64,
    /// Extra arrivals per second while an episode runs.
    pub boost_rate: f64,
    /// Mean lifetime of flash arrivals (seconds, exponential); `0` lets
    /// them run out the stream.
    pub mean_lifetime: f64,
    /// The flash layer's own RNG seed.
    pub seed: u64,
}

impl Default for FlashSpec {
    fn default() -> Self {
        Self {
            rate: 1.0 / 600.0,
            mean_duration: 60.0,
            boost_rate: 1.0,
            mean_lifetime: 30.0,
            seed: 0,
        }
    }
}

/// Correlated multi-tenant bursts: each tenant alternates idle/burst
/// phases (exponential), and every burst start pulls each *other* tenant
/// into a simultaneous burst with probability `correlation` — the
/// [`FaultSpec`] rack-failure pattern applied to demand instead of
/// supply. A bursting tenant submits its favored model with probability
/// `skew` and otherwise draws from the spec's [`Popularity`] law. Own
/// seed; never perturbs the base arrivals.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Number of tenants (favored models rotate through the pool).
    pub tenants: usize,
    /// Mean idle time between a tenant's bursts (seconds, exponential).
    pub mean_idle: f64,
    /// Mean burst duration (seconds, exponential).
    pub mean_burst: f64,
    /// Arrivals per second from one bursting tenant.
    pub rate: f64,
    /// Probability each other tenant joins a burst at the same instant,
    /// in `[0, 1]`.
    pub correlation: f64,
    /// Probability a burst arrival is the tenant's favored model (the
    /// rest draw from the popularity law), in `[0, 1]`.
    pub skew: f64,
    /// Mean lifetime of burst arrivals (seconds, exponential); `0` lets
    /// them run out the stream.
    pub mean_lifetime: f64,
    /// The tenant layer's own RNG seed.
    pub seed: u64,
}

impl Default for TenantSpec {
    fn default() -> Self {
        Self {
            tenants: 4,
            mean_idle: 300.0,
            mean_burst: 45.0,
            rate: 0.5,
            correlation: 0.25,
            skew: 0.7,
            mean_lifetime: 60.0,
            seed: 0,
        }
    }
}

/// SplitMix64-style derivation of one episode's RNG seed from its
/// layer seed and episode index. Giving each episode its **own** seeded
/// RNG makes the draw values independent of expansion order, so the
/// eager (`generate`) and lazily heap-merged (`LoadStream`) paths agree
/// value-for-value by construction.
fn derive_stream_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What a burst arrival's model draw looks like.
#[derive(Debug, Clone, Copy)]
enum BurstModel {
    /// Every arrival is the episode's viral model.
    Fixed(ModelId),
    /// Favored with probability `skew`, else a popularity draw.
    Tenant { favored: ModelId, skew: f64 },
}

/// One overlay burst episode — a descriptor, not its arrivals (episodes
/// are materialized, arrivals are expanded lazily per episode).
#[derive(Debug, Clone)]
struct BurstEpisode {
    start: f64,
    end: f64,
    /// Arrivals per second while the episode runs.
    rate: f64,
    /// The episode's own RNG seed (see [`derive_stream_seed`]).
    seed: u64,
    model: BurstModel,
    mean_lifetime: f64,
    /// Merge rank of the owning layer (base 0, flash 1, tenants 2).
    layer: u8,
    /// Canonical episode index within the layer (the tie-break after
    /// time and layer).
    idx: u64,
}

/// One overlay arrival, fully drawn: where it sorts, what it runs, and
/// when it leaves (`None` = runs out the stream).
#[derive(Debug, Clone, Copy)]
struct OverlayArrival {
    at: f64,
    layer: u8,
    ep: u64,
    seq: u64,
    model: ModelId,
    leave: Option<f64>,
}

/// Lazily expands one episode's arrivals from its own seeded RNG.
struct EpisodeCursor {
    ep: BurstEpisode,
    rng: StdRng,
    t: f64,
    seq: u64,
}

impl EpisodeCursor {
    fn new(ep: BurstEpisode) -> Self {
        let rng = StdRng::seed_from_u64(ep.seed);
        let t = ep.start;
        Self { ep, rng, t, seq: 0 }
    }

    /// The episode's next arrival, or `None` when it runs out.
    fn next_arrival(&mut self, horizon: f64, sampler: &ModelSampler) -> Option<OverlayArrival> {
        self.t += exponential(&mut self.rng, self.ep.rate);
        if self.t >= self.ep.end.min(horizon) {
            return None;
        }
        let model = match self.ep.model {
            BurstModel::Fixed(m) => m,
            BurstModel::Tenant { favored, skew } => {
                if self.rng.gen_range(0.0..1.0) < skew {
                    favored
                } else {
                    sampler.draw(&mut self.rng)
                }
            }
        };
        let leave = (self.ep.mean_lifetime > 0.0)
            .then(|| self.t + exponential(&mut self.rng, 1.0 / self.ep.mean_lifetime))
            .filter(|&leave| leave < horizon);
        let seq = self.seq;
        self.seq += 1;
        Some(OverlayArrival { at: self.t, layer: self.ep.layer, ep: self.ep.idx, seq, model, leave })
    }
}

impl FlashSpec {
    fn validate(&self) {
        assert!(self.rate > 0.0, "flash episode rate must be positive");
        assert!(self.mean_duration > 0.0, "flash duration must be positive");
        assert!(self.boost_rate > 0.0, "flash boost rate must be positive");
        assert!(self.mean_lifetime >= 0.0, "flash lifetime cannot be negative");
    }

    /// Expands the layer into episode descriptors (serial: one crowd at a
    /// time): starts are a Poisson renewal walk, each episode's viral
    /// model is drawn uniformly from the pool by the layer RNG, and its
    /// arrivals come from a per-episode derived seed.
    fn episodes(&self, horizon: f64, pool: &[ModelId]) -> Vec<BurstEpisode> {
        self.validate();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut episodes = Vec::new();
        let mut t = 0.0;
        loop {
            t += exponential(&mut rng, self.rate);
            if t >= horizon {
                break;
            }
            let end = t + exponential(&mut rng, 1.0 / self.mean_duration);
            let model = pool[rng.gen_range(0..pool.len())];
            let idx = episodes.len() as u64;
            episodes.push(BurstEpisode {
                start: t,
                end,
                rate: self.boost_rate,
                seed: derive_stream_seed(self.seed, idx),
                model: BurstModel::Fixed(model),
                mean_lifetime: self.mean_lifetime,
                layer: 1,
                idx,
            });
            t = end;
        }
        episodes
    }
}

impl TenantSpec {
    fn validate(&self) {
        assert!(self.tenants > 0, "tenant layer needs at least one tenant");
        assert!(
            self.mean_idle > 0.0 && self.mean_burst > 0.0,
            "tenant phase durations must be positive"
        );
        assert!(self.rate > 0.0, "tenant burst rate must be positive");
        assert!(
            (0.0..=1.0).contains(&self.correlation),
            "tenant correlation must be in [0, 1]"
        );
        assert!((0.0..=1.0).contains(&self.skew), "tenant skew must be in [0, 1]");
        assert!(self.mean_lifetime >= 0.0, "tenant lifetime cannot be negative");
    }

    /// Expands the layer into episode descriptors: per-tenant idle/burst
    /// renewal walks, then correlated joins visited in `(start, tenant)`
    /// order (the [`FaultSpec`] pattern), canonically ordered by
    /// `(start, tenant, end)` so episode indices — and with them the
    /// derived per-episode seeds — are a pure function of the spec.
    fn episodes(&self, horizon: f64, pool: &[ModelId]) -> Vec<BurstEpisode> {
        self.validate();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut raw: Vec<(f64, f64, usize)> = Vec::new();
        for tenant in 0..self.tenants {
            let mut t = 0.0;
            loop {
                t += exponential(&mut rng, 1.0 / self.mean_idle);
                if t >= horizon {
                    break;
                }
                let end = t + exponential(&mut rng, 1.0 / self.mean_burst);
                raw.push((t, end, tenant));
                t = end;
            }
        }
        if self.correlation > 0.0 {
            let mut base = raw.clone();
            base.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.2.cmp(&b.2)));
            for (start, _, source) in base {
                for joined in 0..self.tenants {
                    if joined == source {
                        continue;
                    }
                    if rng.gen_range(0.0..1.0) < self.correlation {
                        let end = start + exponential(&mut rng, 1.0 / self.mean_burst);
                        raw.push((start, end, joined));
                    }
                }
            }
        }
        raw.sort_by(|a, b| {
            a.0.total_cmp(&b.0).then(a.2.cmp(&b.2)).then(a.1.total_cmp(&b.1))
        });
        raw.into_iter()
            .enumerate()
            .map(|(k, (start, end, tenant))| BurstEpisode {
                start,
                end,
                rate: self.rate,
                seed: derive_stream_seed(self.seed, k as u64),
                model: BurstModel::Tenant {
                    favored: pool[tenant % pool.len()],
                    skew: self.skew,
                },
                mean_lifetime: self.mean_lifetime,
                layer: 2,
                idx: k as u64,
            })
            .collect()
    }
}

/// Deterministic fault-injection configuration: a seeded renewal process
/// of shard outages (exponential MTBF/MTTR, optionally correlated across
/// shards) plus a seeded stream of thermal-throttle episodes per shard.
///
/// The spec carries its **own seed**, drawn from its own RNG stream, so
/// layering faults into a [`LoadSpec`] never perturbs the arrival
/// process — the faulted and fault-free runs see the identical offered
/// load, which is what makes evacuation-on/off A/B comparisons (the
/// `fleet_chaos` bench) exact.
///
/// Per-shard outage intervals are merged before events are emitted, so
/// the generated stream strictly alternates
/// [`FleetEvent::ShardDown`]/[`FleetEvent::ShardUp`] per shard.
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// Number of shards faults are generated for (indices `0..shards`).
    pub shards: usize,
    /// Mean time between failures per shard (seconds, exponential);
    /// `0.0` disables outages.
    pub mtbf: f64,
    /// Mean time to repair (seconds, exponential).
    pub mttr: f64,
    /// Probability that each *other* shard joins an outage at the same
    /// instant (correlated rack/power failures), in `[0, 1]`.
    pub correlation: f64,
    /// Poisson rate of throttle episodes per shard (per second); `0.0`
    /// disables throttling.
    pub throttle_rate: f64,
    /// Throttle factors are drawn uniformly from this `(min, max)` range
    /// of served-speed fractions, each in `(0, 1]`.
    pub throttle_range: (f64, f64),
    /// Mean throttle-episode duration (seconds, exponential); the episode
    /// ends with a restoring `factor = 1.0` event.
    pub mean_throttle: f64,
    /// The fault stream's own RNG seed (independent of the load seed).
    pub seed: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self {
            shards: 1,
            mtbf: 900.0,
            mttr: 120.0,
            correlation: 0.0,
            throttle_rate: 0.0,
            throttle_range: (0.4, 0.9),
            mean_throttle: 180.0,
            seed: 0,
        }
    }
}

impl FaultSpec {
    /// Expands the spec into a sorted fault-event stream over
    /// `[0, horizon)`.
    ///
    /// Guarantees: per shard, `ShardDown`/`ShardUp` strictly alternate
    /// (overlapping draws — including correlated joins — are merged into
    /// one outage); an outage running past the horizon emits no
    /// `ShardUp`; throttle episodes never overlap on one shard and each
    /// in-horizon episode end restores `factor = 1.0`. The stream is a
    /// pure function of the spec and horizon.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`, a rate/duration is negative, the
    /// correlation is outside `[0, 1]`, or the throttle range is not
    /// within `(0, 1]` with `min <= max`.
    pub fn generate(&self, horizon: f64) -> Vec<FleetEvent> {
        assert!(self.shards > 0, "fault spec needs at least one shard");
        assert!(horizon > 0.0, "horizon must be positive");
        assert!(
            self.mtbf >= 0.0 && self.mttr >= 0.0 && self.mean_throttle >= 0.0,
            "fault timescales cannot be negative"
        );
        assert!(
            (0.0..=1.0).contains(&self.correlation),
            "outage correlation must be in [0, 1]"
        );
        let (lo, hi) = self.throttle_range;
        assert!(
            0.0 < lo && lo <= hi && hi <= 1.0,
            "throttle factors must satisfy 0 < min <= max <= 1"
        );
        assert!(self.throttle_rate >= 0.0, "throttle rate cannot be negative");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut events = Vec::new();

        // Base outages: one alternating up/down renewal walk per shard,
        // generated shard by shard from the single spec RNG (a fixed
        // draw order, so the stream is deterministic).
        let mut outages: Vec<Vec<(f64, f64)>> = vec![Vec::new(); self.shards];
        if self.mtbf > 0.0 && self.mttr > 0.0 {
            for intervals in outages.iter_mut() {
                let mut t = 0.0;
                loop {
                    t += exponential(&mut rng, 1.0 / self.mtbf);
                    if t >= horizon {
                        break;
                    }
                    let end = t + exponential(&mut rng, 1.0 / self.mttr);
                    intervals.push((t, end));
                    t = end;
                }
            }
            // Correlated joins: every base failure, visited in (time,
            // source-shard) order, pulls each other shard into the outage
            // with probability `correlation` — its repair drawn
            // independently, so a rack event fans out but un-fans
            // raggedly, like real recoveries.
            if self.correlation > 0.0 {
                let mut base: Vec<(f64, usize)> = outages
                    .iter()
                    .enumerate()
                    .flat_map(|(s, iv)| iv.iter().map(move |&(start, _)| (start, s)))
                    .collect();
                base.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                for (start, source) in base {
                    for (joined, shard_outages) in outages.iter_mut().enumerate() {
                        if joined == source {
                            continue;
                        }
                        if rng.gen_range(0.0..1.0) < self.correlation {
                            let end = start + exponential(&mut rng, 1.0 / self.mttr);
                            shard_outages.push((start, end));
                        }
                    }
                }
            }
        }
        for (s, intervals) in outages.iter_mut().enumerate() {
            // Merge overlapping draws so the emitted stream strictly
            // alternates Down/Up per shard.
            intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut merged: Vec<(f64, f64)> = Vec::new();
            for &(start, end) in intervals.iter() {
                match merged.last_mut() {
                    Some(last) if start <= last.1 => last.1 = last.1.max(end),
                    _ => merged.push((start, end)),
                }
            }
            for (start, end) in merged {
                events.push(FleetEvent::ShardDown { at: start, shard: s });
                if end < horizon {
                    events.push(FleetEvent::ShardUp { at: end, shard: s });
                }
            }
        }

        // Throttle episodes: per shard, non-overlapping by construction
        // (the walk resumes at each episode's end).
        if self.throttle_rate > 0.0 && self.mean_throttle > 0.0 {
            for s in 0..self.shards {
                let mut t = 0.0;
                loop {
                    t += exponential(&mut rng, self.throttle_rate);
                    if t >= horizon {
                        break;
                    }
                    let factor =
                        if lo == hi { lo } else { rng.gen_range(lo..hi) };
                    let end = t + exponential(&mut rng, 1.0 / self.mean_throttle);
                    events.push(FleetEvent::ShardThrottle { at: t, shard: s, factor });
                    if end < horizon {
                        events.push(FleetEvent::ShardThrottle {
                            at: end,
                            shard: s,
                            factor: 1.0,
                        });
                    }
                    t = end;
                }
            }
        }
        events.sort_by(|a, b| a.at().total_cmp(&b.at()));
        events
    }
}

/// Load-generation configuration.
///
/// # Example
///
/// A bursty stream is fully determined by its spec — same seed, same
/// events, which is what makes trace replay exact:
///
/// ```
/// use rankmap_fleet::{generate, ArrivalProcess, FleetEvent, LoadSpec};
///
/// let spec = LoadSpec {
///     horizon: 300.0,
///     process: ArrivalProcess::OnOff {
///         burst_rate: 0.5,
///         idle_rate: 0.0,
///         mean_burst: 20.0,
///         mean_idle: 60.0,
///     },
///     seed: 7,
///     ..Default::default()
/// };
/// let events = generate(&spec);
/// assert_eq!(events, generate(&spec), "generation is deterministic");
/// assert!(events.iter().all(|e| (0.0..spec.horizon).contains(&e.at())));
/// assert!(events.iter().any(|e| matches!(e, FleetEvent::Arrive { .. })));
/// ```
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Stream length in seconds.
    pub horizon: f64,
    /// The arrival process.
    pub process: ArrivalProcess,
    /// Mean DNN lifetime in seconds (exponential); departures past the
    /// horizon are dropped (the instance runs out the stream).
    pub mean_lifetime: f64,
    /// Model pool arrivals draw from (filtered by `mix`).
    pub pool: Vec<ModelId>,
    /// Heavy/light filter over the pool.
    pub mix: MixProfile,
    /// Poisson rate of fleet-wide priority churn (events per second);
    /// each rotates the critical rank among the offered-live count or
    /// reverts to dynamic ranks.
    pub priority_churn_rate: f64,
    /// RNG seed (generation is deterministic given the seed).
    pub seed: u64,
    /// Optional fault layer: shard outages and throttle episodes
    /// generated from the fault spec's *own* seed and merged into the
    /// stream. `None` (the default) offers the identical fault-free
    /// stream as before — layering faults never perturbs the arrivals.
    pub faults: Option<FaultSpec>,
    /// How arrivals pick a model from the pool. The default
    /// ([`Popularity::Uniform`]) reproduces the original draws exactly;
    /// [`Popularity::Zipf`] skews toward the head of the pool.
    pub popularity: Popularity,
    /// Optional flash-crowd layer (own seed — never perturbs the base
    /// arrivals or the fault layer).
    pub flash: Option<FlashSpec>,
    /// Optional correlated multi-tenant burst layer (own seed — never
    /// perturbs the base arrivals, the flash layer, or the fault layer).
    pub tenants: Option<TenantSpec>,
}

impl Default for LoadSpec {
    fn default() -> Self {
        Self {
            horizon: 600.0,
            process: ArrivalProcess::Poisson { rate: 1.0 / 30.0 },
            mean_lifetime: 240.0,
            pool: ModelId::paper_pool(),
            mix: MixProfile::Mixed,
            priority_churn_rate: 0.0,
            seed: 0,
            faults: None,
            popularity: Popularity::Uniform,
            flash: None,
            tenants: None,
        }
    }
}

/// Generates a sorted, valid fleet event stream for a [`LoadSpec`].
///
/// Guarantees: event times are non-decreasing and within `[0, horizon)`;
/// every departure names a request that arrived strictly earlier and
/// departs exactly once; request ids are dense in arrival order.
///
/// # Panics
///
/// Panics if the (mix-filtered) pool is empty, `horizon <= 0`, or the
/// process parameters are invalid.
pub fn generate(spec: &LoadSpec) -> Vec<FleetEvent> {
    assert!(spec.horizon > 0.0, "horizon must be positive");
    let pool = mix_pool(&spec.pool, spec.mix);
    assert!(!pool.is_empty(), "load pool must not be empty");
    let sampler = ModelSampler::new(&pool, spec.popularity);
    let mut rng = StdRng::seed_from_u64(spec.seed);

    // Base arrivals, drawn in base time order (layer 0; the episode slot
    // carries the base ordinal so equal-time base arrivals keep draw
    // order through the merge sort below). Under `Popularity::Uniform`
    // the sampler makes the identical single RNG call the original code
    // did, so pre-existing specs stay byte-identical.
    let times = spec.process.sample_times(&mut rng, spec.horizon);
    let mut arrivals: Vec<OverlayArrival> = Vec::with_capacity(times.len());
    for (k, &at) in times.iter().enumerate() {
        let model = sampler.draw(&mut rng);
        let leave = (spec.mean_lifetime > 0.0)
            .then(|| at + exponential(&mut rng, 1.0 / spec.mean_lifetime))
            .filter(|&leave| leave < spec.horizon);
        arrivals.push(OverlayArrival { at, layer: 0, ep: k as u64, seq: 0, model, leave });
    }

    // Overlay layers expand eagerly here (lazily in [`LoadStream`]) from
    // per-episode derived seeds, so both paths draw identical values.
    for episodes in [
        spec.flash.as_ref().map(|f| f.episodes(spec.horizon, &pool)),
        spec.tenants.as_ref().map(|t| t.episodes(spec.horizon, &pool)),
    ]
    .into_iter()
    .flatten()
    {
        for ep in episodes {
            let mut cursor = EpisodeCursor::new(ep);
            while let Some(arrival) = cursor.next_arrival(spec.horizon, &sampler) {
                arrivals.push(arrival);
            }
        }
    }
    // Canonical merge order — time, then layer (base < flash < tenants),
    // then episode, then within-episode sequence — matches the order the
    // stream's heap merge emits, so dense request ids agree across paths.
    arrivals.sort_by(|a, b| {
        a.at.total_cmp(&b.at)
            .then(a.layer.cmp(&b.layer))
            .then(a.ep.cmp(&b.ep))
            .then(a.seq.cmp(&b.seq))
    });

    let mut events: Vec<FleetEvent> = Vec::with_capacity(arrivals.len() * 2);
    let mut departures: Vec<(f64, RequestId)> = Vec::new();
    for (k, arrival) in arrivals.iter().enumerate() {
        let request = RequestId::new(k as u64);
        events.push(FleetEvent::Arrive { at: arrival.at, request, model: arrival.model });
        if let Some(leave) = arrival.leave {
            departures.push((leave, request));
        }
    }
    for &(at, request) in &departures {
        events.push(FleetEvent::Depart { at, request });
    }

    if spec.priority_churn_rate > 0.0 {
        // Arrival times are already sorted; sort departure times once so
        // each churn event's live count is two binary searches, not a
        // scan of the whole stream.
        let arrival_times: Vec<f64> = arrivals.iter().map(|a| a.at).collect();
        let mut departure_times: Vec<f64> = departures.iter().map(|&(dt, _)| dt).collect();
        departure_times.sort_by(f64::total_cmp);
        let mut ct = 0.0;
        let mut rotation = 0usize;
        loop {
            ct += exponential(&mut rng, spec.priority_churn_rate);
            if ct >= spec.horizon {
                break;
            }
            let live = arrival_times.partition_point(|&at| at <= ct)
                - departure_times.partition_point(|&dt| dt <= ct);
            let mode = if live == 0 || rotation % (live + 1) == live {
                PriorityMode::Dynamic
            } else {
                PriorityMode::critical(live, rotation % live)
            };
            rotation += 1;
            events.push(FleetEvent::SetPriorities { at: ct, mode });
        }
    }

    if let Some(faults) = &spec.faults {
        // The fault layer draws from its own seeded RNG, so the arrival
        // stream above is byte-identical with or without it.
        events.extend(faults.generate(spec.horizon));
    }

    events.sort_by(|a, b| a.at().total_cmp(&b.at()));
    events
}

/// The streaming twin of [`generate`]: an iterator yielding the
/// **byte-identical** event sequence without materializing it.
///
/// `generate` holds every arrival, departure, and churn event of the
/// whole horizon in memory before sorting; at bench scale (10⁵–10⁶
/// instance lifetimes) that vector dominates the run's footprint. The
/// stream instead replays the exact RNG draw sequence lazily:
///
/// * **Arrival times** walk the process incrementally (the internal
///   `TimeWalk`, pinned against the eager sampler by the equivalence
///   tests).
/// * **Per-arrival draws** (model, lifetime) come from a second RNG
///   clone positioned by draining the time walk once at construction —
///   `generate` draws them *after* all time draws, so position, not
///   interleaving, is what matters.
/// * **Churn draws** come from a third clone positioned past the
///   per-arrival draws the same way.
/// * **Overlay arrivals** expand per episode from derived seeds and
///   merge through a heap keyed `(time, layer, episode)`.
/// * **Departures** wait in a min-heap keyed `(time, request ordinal)` —
///   O(live instances), the stream's only load-proportional state.
///
/// Equal-timestamp ordering replicates `generate`'s stable sort: kind
/// rank (arrive < depart < churn < fault), then within-kind order.
/// Fault events and overlay episode *descriptors* are materialized up
/// front — both are sparse (outages and bursts, not arrivals) — so peak
/// buffered event state is independent of how many instances the
/// horizon offers ([`LoadStream::peak_buffered`] measures it, and the
/// bounded-buffer test asserts it).
///
/// # Example
///
/// ```
/// use rankmap_fleet::{generate, LoadSpec, LoadStream};
///
/// let spec = LoadSpec { horizon: 300.0, ..Default::default() };
/// let streamed: Vec<_> = LoadStream::new(&spec).collect();
/// assert_eq!(streamed, generate(&spec));
/// ```
pub struct LoadStream {
    horizon: f64,
    mean_lifetime: f64,
    sampler: ModelSampler,
    /// Lazy base arrival-time walk plus its lookahead.
    walk: TimeWalk,
    base_next: Option<f64>,
    /// Positioned past all time draws: model + lifetime per base arrival.
    marks_rng: StdRng,
    /// Overlay episode cursors and their pending arrivals, merged via
    /// a min-heap of `(time bits, layer, episode, slot)`.
    cursors: Vec<EpisodeCursor>,
    pending: Vec<Option<OverlayArrival>>,
    overlay_heap: BinaryHeap<Reverse<(u64, u8, u64, usize)>>,
    /// In-horizon departures awaiting emission: `(time bits, ordinal)`.
    departures: BinaryHeap<Reverse<(u64, u64)>>,
    /// Positioned past all per-arrival draws; `None` disables churn.
    churn_rng: StdRng,
    churn_rate: f64,
    churn_t: f64,
    churn_next: Option<f64>,
    rotation: usize,
    arrivals_emitted: u64,
    departures_emitted: u64,
    /// Materialized fault layer (sparse) and its cursor.
    faults: Vec<FleetEvent>,
    fault_cursor: usize,
    peak_buffered: usize,
}

impl LoadStream {
    /// Builds the stream for a spec. Construction drains the time walk
    /// twice (cheap, allocation-free) to position the per-arrival and
    /// churn RNG clones exactly where `generate` would have them.
    ///
    /// # Panics
    ///
    /// Same contract as [`generate`]: panics if the (mix-filtered) pool
    /// is empty, `horizon <= 0`, or any layer's parameters are invalid.
    pub fn new(spec: &LoadSpec) -> Self {
        assert!(spec.horizon > 0.0, "horizon must be positive");
        let pool = mix_pool(&spec.pool, spec.mix);
        assert!(!pool.is_empty(), "load pool must not be empty");
        let sampler = ModelSampler::new(&pool, spec.popularity);

        // Position the per-arrival RNG: drain one walk to count arrivals
        // and land exactly past the time draws.
        let mut probe = TimeWalk::new(
            spec.process,
            spec.horizon,
            StdRng::seed_from_u64(spec.seed),
        );
        let mut arrival_count = 0u64;
        while probe.next().is_some() {
            arrival_count += 1;
        }
        let marks_rng = probe.into_rng();

        // Position the churn RNG past the per-arrival draws (one model
        // draw, plus one lifetime draw when lifetimes are finite).
        let mut churn_rng = marks_rng.clone();
        for _ in 0..arrival_count {
            sampler.draw(&mut churn_rng);
            if spec.mean_lifetime > 0.0 {
                exponential(&mut churn_rng, 1.0 / spec.mean_lifetime);
            }
        }

        // The live walk the iterator consumes, plus its lookahead.
        let mut walk = TimeWalk::new(
            spec.process,
            spec.horizon,
            StdRng::seed_from_u64(spec.seed),
        );
        let base_next = walk.next();

        // Overlay cursors: episode descriptors are materialized (sparse),
        // their arrivals expand lazily through the heap.
        let mut cursors = Vec::new();
        for episodes in [
            spec.flash.as_ref().map(|f| f.episodes(spec.horizon, &pool)),
            spec.tenants.as_ref().map(|t| t.episodes(spec.horizon, &pool)),
        ]
        .into_iter()
        .flatten()
        {
            cursors.extend(episodes.into_iter().map(EpisodeCursor::new));
        }
        let mut pending = Vec::with_capacity(cursors.len());
        let mut overlay_heap = BinaryHeap::with_capacity(cursors.len());
        for (slot, cursor) in cursors.iter_mut().enumerate() {
            let arrival = cursor.next_arrival(spec.horizon, &sampler);
            if let Some(a) = &arrival {
                overlay_heap.push(Reverse((a.at.to_bits(), a.layer, a.ep, slot)));
            }
            pending.push(arrival);
        }

        let faults = spec
            .faults
            .as_ref()
            .map(|f| f.generate(spec.horizon))
            .unwrap_or_default();

        let mut stream = Self {
            horizon: spec.horizon,
            mean_lifetime: spec.mean_lifetime,
            sampler,
            walk,
            base_next,
            marks_rng,
            cursors,
            pending,
            overlay_heap,
            departures: BinaryHeap::new(),
            churn_rng,
            churn_rate: spec.priority_churn_rate,
            churn_t: 0.0,
            churn_next: None,
            rotation: 0,
            arrivals_emitted: 0,
            departures_emitted: 0,
            faults,
            fault_cursor: 0,
            peak_buffered: 0,
        };
        if stream.churn_rate > 0.0 {
            stream.advance_churn();
        }
        stream
    }

    /// High-water mark of buffered *load-proportional* state: pending
    /// departures plus queued overlay arrivals. Bounded by live
    /// instances (plus one arrival per active burst episode), not by
    /// horizon length — the bounded-buffer test pins this.
    pub fn peak_buffered(&self) -> usize {
        self.peak_buffered
    }

    fn advance_churn(&mut self) {
        self.churn_t += exponential(&mut self.churn_rng, self.churn_rate);
        self.churn_next = (self.churn_t < self.horizon).then_some(self.churn_t);
    }

    /// The next merged arrival's sort key `(time bits, layer, episode)`.
    /// All stream times are positive finite, so raw f64 bits order
    /// exactly like the floats.
    fn peek_arrival(&self) -> Option<(u64, u8, u64)> {
        let base = self.base_next.map(|t| (t.to_bits(), 0u8, 0u64));
        let overlay = self
            .overlay_heap
            .peek()
            .map(|Reverse((bits, layer, ep, _))| (*bits, *layer, *ep));
        match (base, overlay) {
            (Some(b), Some(o)) => Some(b.min(o)),
            (key, None) | (None, key) => key,
        }
    }

    /// Emits the next merged arrival (base beats overlays on time ties —
    /// layer 0 sorts first, matching `generate`'s merge sort).
    fn emit_arrival(&mut self) -> FleetEvent {
        let take_base = match (self.base_next, self.overlay_heap.peek()) {
            (Some(t), Some(Reverse((bits, _, _, _)))) => t.to_bits() <= *bits,
            (Some(_), None) => true,
            (None, _) => false,
        };
        let (at, model, leave) = if take_base {
            let at = self.base_next.take().expect("base arrival pending");
            let model = self.sampler.draw(&mut self.marks_rng);
            let leave = (self.mean_lifetime > 0.0)
                .then(|| at + exponential(&mut self.marks_rng, 1.0 / self.mean_lifetime))
                .filter(|&leave| leave < self.horizon);
            self.base_next = self.walk.next();
            (at, model, leave)
        } else {
            let Reverse((_, _, _, slot)) = self.overlay_heap.pop().expect("overlay pending");
            let arrival = self.pending[slot].take().expect("cursor pending");
            let next = self.cursors[slot].next_arrival(self.horizon, &self.sampler);
            if let Some(a) = &next {
                self.overlay_heap.push(Reverse((a.at.to_bits(), a.layer, a.ep, slot)));
            }
            self.pending[slot] = next;
            (arrival.at, arrival.model, arrival.leave)
        };
        let request = RequestId::new(self.arrivals_emitted);
        self.arrivals_emitted += 1;
        if let Some(leave) = leave {
            self.departures.push(Reverse((leave.to_bits(), request.ordinal())));
        }
        self.peak_buffered =
            self.peak_buffered.max(self.departures.len() + self.overlay_heap.len());
        FleetEvent::Arrive { at, request, model }
    }
}

impl Iterator for LoadStream {
    type Item = FleetEvent;

    fn next(&mut self) -> Option<FleetEvent> {
        // Candidates from the four sources, each tagged with the kind
        // rank `generate`'s stable sort gives equal timestamps: arrivals
        // pushed first, then departures, churn, faults.
        let arrival = self.peek_arrival().map(|(bits, _, _)| (bits, 0u8));
        let depart = self.departures.peek().map(|Reverse((bits, _))| (*bits, 1u8));
        let churn = self.churn_next.map(|t| (t.to_bits(), 2u8));
        let fault = self.faults.get(self.fault_cursor).map(|e| (e.at().to_bits(), 3u8));
        let (_, kind) = [arrival, depart, churn, fault].into_iter().flatten().min()?;
        Some(match kind {
            0 => self.emit_arrival(),
            1 => {
                let Reverse((bits, ordinal)) = self.departures.pop().expect("departure pending");
                self.departures_emitted += 1;
                FleetEvent::Depart { at: f64::from_bits(bits), request: RequestId::new(ordinal) }
            }
            2 => {
                let at = self.churn_next.take().expect("churn pending");
                // Arrivals at or before `at` have all been emitted (kind
                // rank 0 < 2), so the emission counters reproduce
                // `generate`'s binary-searched live count exactly.
                let live = (self.arrivals_emitted - self.departures_emitted) as usize;
                let mode = if live == 0 || self.rotation % (live + 1) == live {
                    PriorityMode::Dynamic
                } else {
                    PriorityMode::critical(live, self.rotation % live)
                };
                self.rotation += 1;
                self.advance_churn();
                FleetEvent::SetPriorities { at, mode }
            }
            _ => {
                let event = self.faults[self.fault_cursor].clone();
                self.fault_cursor += 1;
                event
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrivals_of(events: &[FleetEvent]) -> Vec<f64> {
        events
            .iter()
            .filter_map(|e| match e {
                FleetEvent::Arrive { at, .. } => Some(*at),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = LoadSpec {
            process: ArrivalProcess::OnOff {
                burst_rate: 0.5,
                idle_rate: 0.0,
                mean_burst: 30.0,
                mean_idle: 60.0,
            },
            priority_churn_rate: 1.0 / 120.0,
            ..Default::default()
        };
        assert_eq!(generate(&spec), generate(&spec));
        let other = LoadSpec { seed: 1, ..spec.clone() };
        assert_ne!(generate(&other), generate(&spec));
    }

    #[test]
    fn events_sorted_and_departures_valid() {
        for process in [
            ArrivalProcess::Poisson { rate: 0.1 },
            ArrivalProcess::OnOff {
                burst_rate: 0.8,
                idle_rate: 0.02,
                mean_burst: 20.0,
                mean_idle: 90.0,
            },
            ArrivalProcess::Diurnal { mean_rate: 0.1, amplitude: 0.8, period: 300.0 },
        ] {
            let spec = LoadSpec { process, seed: 7, ..Default::default() };
            let events = generate(&spec);
            let mut last = 0.0f64;
            let mut arrived = 0u64;
            let mut departed = std::collections::HashSet::new();
            for e in &events {
                assert!(e.at() >= last, "sorted");
                assert!((0.0..spec.horizon).contains(&e.at()));
                last = e.at();
                match e {
                    FleetEvent::Arrive { request, .. } => {
                        assert_eq!(request.ordinal(), arrived, "dense arrival ids");
                        arrived += 1;
                    }
                    FleetEvent::Depart { request, .. } => {
                        assert!(request.ordinal() < arrived, "departs after arrival");
                        assert!(departed.insert(*request), "departs once");
                    }
                    _ => {}
                }
            }
            assert!(arrived > 0, "the stream must offer load");
        }
    }

    #[test]
    fn bursty_load_clusters_arrivals() {
        // Same mean rate, bursty vs Poisson: the on/off stream must have a
        // far higher variance of inter-arrival gaps.
        let horizon = 20_000.0;
        let poisson = LoadSpec {
            horizon,
            process: ArrivalProcess::Poisson { rate: 0.05 },
            mean_lifetime: 0.0,
            seed: 3,
            ..Default::default()
        };
        let bursty = LoadSpec {
            horizon,
            // burst 0.245/s for 50s, idle 0.0025/s for 190s → ~0.053/s mean.
            process: ArrivalProcess::OnOff {
                burst_rate: 0.245,
                idle_rate: 0.0025,
                mean_burst: 50.0,
                mean_idle: 190.0,
            },
            mean_lifetime: 0.0,
            seed: 3,
            ..Default::default()
        };
        let cv2 = |events: &[FleetEvent]| {
            let times = arrivals_of(events);
            let gaps: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var =
                gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
            var / (mean * mean)
        };
        let p = cv2(&generate(&poisson));
        let b = cv2(&generate(&bursty));
        assert!(
            b > 2.0 * p,
            "bursty arrivals must be overdispersed vs Poisson: CV² {b:.2} vs {p:.2}"
        );
    }

    #[test]
    fn diurnal_peak_outdraws_trough() {
        let period = 1_000.0;
        let spec = LoadSpec {
            horizon: 50_000.0,
            process: ArrivalProcess::Diurnal { mean_rate: 0.05, amplitude: 0.9, period },
            mean_lifetime: 0.0,
            seed: 5,
            ..Default::default()
        };
        let times = arrivals_of(&generate(&spec));
        // First half of each cycle is the crest of the sine, second the
        // trough.
        let (peak, trough): (Vec<&f64>, Vec<&f64>) =
            times.iter().partition(|&&t| (t % period) < period / 2.0);
        assert!(
            peak.len() as f64 > 2.0 * trough.len() as f64,
            "the crest must dominate: {} vs {}",
            peak.len(),
            trough.len()
        );
    }

    #[test]
    fn fault_layer_never_perturbs_the_arrival_stream() {
        // The A/B foundation of the chaos bench: the faulted stream's
        // non-fault events are byte-identical to the fault-free stream.
        let clean = LoadSpec { seed: 9, ..Default::default() };
        let faulted = LoadSpec {
            faults: Some(FaultSpec {
                shards: 4,
                mtbf: 150.0,
                mttr: 60.0,
                correlation: 0.3,
                throttle_rate: 1.0 / 120.0,
                ..Default::default()
            }),
            ..clean.clone()
        };
        let strip = |events: Vec<FleetEvent>| -> Vec<FleetEvent> {
            events
                .into_iter()
                .filter(|e| {
                    !matches!(
                        e,
                        FleetEvent::ShardDown { .. }
                            | FleetEvent::ShardUp { .. }
                            | FleetEvent::ShardThrottle { .. }
                    )
                })
                .collect()
        };
        assert_eq!(strip(generate(&faulted)), generate(&clean));
        assert_ne!(generate(&faulted), generate(&clean), "faults actually fired");
    }

    #[test]
    fn outages_alternate_down_up_per_shard() {
        let spec = FaultSpec {
            shards: 6,
            mtbf: 80.0,
            mttr: 40.0,
            correlation: 0.5,
            ..Default::default()
        };
        let horizon = 2_000.0;
        let events = spec.generate(horizon);
        assert_eq!(events, spec.generate(horizon), "fault generation is deterministic");
        let mut down = vec![false; spec.shards];
        let mut last = 0.0f64;
        let mut outages = 0;
        for e in &events {
            assert!(e.at() >= last, "sorted");
            assert!((0.0..horizon).contains(&e.at()));
            last = e.at();
            match *e {
                FleetEvent::ShardDown { shard, .. } => {
                    assert!(!down[shard], "down events strictly alternate with up");
                    down[shard] = true;
                    outages += 1;
                }
                FleetEvent::ShardUp { shard, .. } => {
                    assert!(down[shard], "up only after down");
                    down[shard] = false;
                }
                _ => panic!("outage-only spec emitted {e:?}"),
            }
        }
        assert!(outages > spec.shards, "the walk must produce repeated outages");
    }

    #[test]
    fn correlation_couples_outage_starts() {
        let base = FaultSpec { shards: 8, mtbf: 300.0, mttr: 30.0, ..Default::default() };
        let starts = |correlation: f64| -> Vec<f64> {
            let spec = FaultSpec { correlation, ..base.clone() };
            spec.generate(5_000.0)
                .iter()
                .filter_map(|e| match e {
                    FleetEvent::ShardDown { at, .. } => Some(*at),
                    _ => None,
                })
                .collect()
        };
        // Count multi-shard outages: down events sharing one timestamp.
        let shared = |starts: &[f64]| {
            starts.windows(2).filter(|w| w[0] == w[1]).count()
        };
        let independent = starts(0.0);
        let correlated = starts(0.8);
        assert_eq!(shared(&independent), 0, "independent outages never share an instant");
        assert!(
            shared(&correlated) > 3,
            "correlated outages must pull other shards down at the same instant"
        );
    }

    #[test]
    fn throttle_episodes_bound_factors_and_restore() {
        let spec = FaultSpec {
            shards: 3,
            mtbf: 0.0, // outages off: throttles only
            throttle_rate: 1.0 / 100.0,
            throttle_range: (0.5, 0.8),
            mean_throttle: 60.0,
            ..Default::default()
        };
        let events = spec.generate(4_000.0);
        let mut throttled = vec![false; spec.shards];
        let mut episodes = 0;
        for e in &events {
            let FleetEvent::ShardThrottle { shard, factor, .. } = *e else {
                panic!("throttle-only spec emitted {e:?}");
            };
            if factor == 1.0 {
                assert!(throttled[shard], "a restore must close an open episode");
                throttled[shard] = false;
            } else {
                assert!((0.5..0.8).contains(&factor), "factor within the range: {factor}");
                assert!(!throttled[shard], "episodes never overlap on one shard");
                throttled[shard] = true;
                episodes += 1;
            }
        }
        assert!(episodes >= 3, "the walk must produce real episodes: {episodes}");
    }

    #[test]
    fn mean_rate_matches_offered_load() {
        let p = ArrivalProcess::OnOff {
            burst_rate: 0.5,
            idle_rate: 0.1,
            mean_burst: 10.0,
            mean_idle: 30.0,
        };
        assert!((p.mean_rate() - (0.5 * 10.0 + 0.1 * 30.0) / 40.0).abs() < 1e-12);
        assert_eq!(ArrivalProcess::Poisson { rate: 0.2 }.mean_rate(), 0.2);
    }
}
