//! The deterministic shard-parallel fleet executor.
//!
//! [`FleetExecutor`] owns the shards and drives the event loop. Two
//! concurrency models share one decision path:
//!
//! * **Global event barriers** ([`Parallelism::Threads`]): the sorted
//!   event stream is processed one event at a time, and *within* each
//!   event every piece of per-shard work — placement probes,
//!   `SetPriorities` remaps, the rebalancer's health scan, the
//!   source/destination applies of a migration, the final timeline
//!   close — fans out across up to `n` worker threads and joins before
//!   the next event starts.
//! * **The epoch log** ([`Parallelism::Async`]): the executor pulls a
//!   *window* of up to `max_epoch_lag + 1` events of the shared ordered
//!   log ahead of the apply cursor and speculatively scores every
//!   buffered arrival against the current — soon to be slightly stale —
//!   shard snapshots in one parallel fan, each probe stamped with its
//!   shard's epoch counter and placement class key (see
//!   `crate::speculate`). Applies still proceed in strict log order;
//!   at apply time each speculative probe is validated per shard (epoch
//!   unchanged → reuse; lag within the bound and class key equal →
//!   revalidate and reuse; otherwise re-probe fresh), so one slow
//!   shard's remap no longer stalls the probe work of every event
//!   behind it at a per-event barrier.
//!
//! In both modes no two threads ever touch the same shard: work is
//! partitioned *by shard* (`&mut Shard` per worker), the shards are
//! owned `Send` state, and results are merged back in canonical shard
//! order.
//!
//! **Determinism argument.** Every per-shard computation is a pure
//! function of that shard's state (sessions, mappers and oracles are
//! deterministic given their seeds), the merge order is the canonical
//! shard index — never completion order — and cross-shard decisions
//! (admission, rebalance victim/destination) are taken serially from the
//! merged score vector exactly as the sequential reference does. A
//! reused speculative probe is bit-identical to a fresh build — the
//! epoch/class-key validation proves its snapshot is (still, or again)
//! the live shard state, and `build_probe` is a pure function of that
//! state. No floating-point sum ever changes its association order, so
//! [`Parallelism::Threads`] with *any* `n` and [`Parallelism::Async`]
//! with *any* worker count and lag bound produce placements, timelines,
//! metrics, and trace replays **bit-identical** to
//! [`Parallelism::Sequential`] (property-tested in
//! `crates/fleet/tests/parallel.rs` and `crates/fleet/tests/async_exec.rs`).

use crate::index::PlacementIndex;
use crate::load::{FleetEvent, RequestId};
use crate::metrics::{FleetMetrics, LatencyStats, PlacementOutcome, PlacementRecord};
use crate::placement::{ProbeMemo, PROBE_MEMO_BOUND};
use crate::runtime::FleetOutcome;
use crate::shard::Shard;
use crate::spec::FleetSpec;
use crate::speculate::{SpecEntry, SpeculationCache};
use crate::telemetry::{stage, FleetTelemetry, TelemetrySpec};
use rankmap_core::dataset::ideal_rates;
use rankmap_core::manager::{ManagerConfig, RankMapManager};
use rankmap_core::oracle::ThroughputOracle;
use rankmap_core::priority::PriorityMode;
use rankmap_core::runtime::{
    timeline_average_potential, DynamicEvent, DynamicRuntime, GainObjective, InstanceId,
    RankMapMapper, TimelinePoint,
};
use rankmap_models::ModelId;
use rankmap_telemetry::Histogram;
use std::collections::{HashMap, VecDeque};
use std::time::Instant;

/// Upper bound on the epoch log's lookahead window (events buffered and
/// speculatively scored ahead of the apply cursor). `max_epoch_lag`
/// beyond it still governs apply-time validation — only prefetch depth
/// is clamped, bounding speculation memory at any lag bound.
pub(crate) const LOOKAHEAD_BOUND: u64 = 256;

/// How shard work is executed.
///
/// Every mode runs the *same* decision logic over the shards in canonical
/// order and is bit-identical to [`Parallelism::Sequential`] by
/// construction (and by property test); the choice only decides whether
/// per-shard work items are spread across worker threads — and, for
/// [`Parallelism::Async`], whether probe work may run ahead of the apply
/// cursor instead of waiting at a per-event barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// Advance every shard in turn on the calling thread — the reference
    /// implementation and the determinism oracle the other modes are
    /// measured against.
    Sequential,
    /// Fan per-shard work across up to `n` worker threads between global
    /// event barriers (`Threads(1)` is the serial schedule on the
    /// executor's code path; `n` is not clamped to the host's core count,
    /// so an oversubscribed width still exercises real concurrency).
    Threads(usize),
    /// Barrier-free epoch-log execution: up to `max_epoch_lag + 1`
    /// events are pulled ahead of the apply cursor and their arrivals
    /// speculatively probe-scored against current shard snapshots across
    /// `workers` threads; each speculative probe is validated at apply
    /// time against the shard's epoch counter and placement class key,
    /// and re-probed fresh on staleness beyond
    /// [`FleetConfig::max_epoch_lag`] or a failed validation (see
    /// `crate::speculate`). `Async { workers, max_epoch_lag: 0 }`
    /// degenerates to the per-event barrier schedule of
    /// `Threads(workers)`.
    Async {
        /// Fan-out width of every per-shard barrier and speculation fan.
        workers: usize,
        /// Staleness bound: how many shard epochs a speculative probe may
        /// lag the live state and still be revalidated (by class key)
        /// instead of unconditionally rebuilt.
        max_epoch_lag: u64,
    },
}

impl Parallelism {
    /// The fan-out width this mode permits.
    pub(crate) fn width(self) -> usize {
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Async { workers, .. } => workers.max(1),
        }
    }

    /// How many events the executor pulls ahead of the apply cursor —
    /// the epoch log's speculation window. 0 under the barrier modes.
    pub(crate) fn lookahead(self) -> u64 {
        match self {
            Parallelism::Async { max_epoch_lag, .. } => max_epoch_lag.min(LOOKAHEAD_BOUND),
            _ => 0,
        }
    }

    /// The staleness bound of apply-time validation (see
    /// [`Parallelism::Async`]); 0 under the barrier modes.
    pub fn max_epoch_lag(self) -> u64 {
        match self {
            Parallelism::Async { max_epoch_lag, .. } => max_epoch_lag,
            _ => 0,
        }
    }

    /// Whether this mode speculates ahead of the apply cursor.
    pub(crate) fn is_async(self) -> bool {
        matches!(self, Parallelism::Async { .. })
    }
}

/// One worker thread per host core — the production default. On a
/// single-core host this degrades to the serial schedule with zero spawn
/// overhead.
impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::Threads(rayon::current_num_threads())
    }
}

/// Fleet-wide configuration (per-shard manager settings included).
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Timeline sampling interval of every shard session (seconds).
    pub sample_dt: f64,
    /// Per-shard manager configuration (search budgets, plan-cache
    /// capacity, ...).
    pub manager: ManagerConfig,
    /// Hard per-shard concurrency cap — the admission backstop.
    pub max_per_shard: usize,
    /// Minimum predicted potential (fraction of the *hosting shard's*
    /// ideal rate) an arrival must reach on its best candidate shard to
    /// be admitted; below it the request is rejected.
    pub admission_floor: f64,
    /// Expected residency window handed to shard sessions as the remap
    /// decision's integration horizon (seconds).
    pub decision_window: f64,
    /// A shard whose mean predicted potential falls below this value is a
    /// rebalance candidate.
    pub rebalance_threshold: f64,
    /// Required predicted improvement of the source shard's mean
    /// potential for a rebalance migration to fire.
    pub rebalance_margin: f64,
    /// Remap-gain objective of every shard runtime.
    pub objective: GainObjective,
    /// Migration awareness of every shard runtime.
    pub migration_aware: bool,
    /// Whether placement probes are answered through one fused
    /// [`ThroughputOracle::predict_grouped`] call per platform group
    /// (with duplicate probes deduplicated) instead of one
    /// `predict_batch` call per shard. Decisions are bit-identical either
    /// way; `false` keeps the serial path for A/B benchmarking.
    pub fused_scoring: bool,
    /// How shard work is executed (see [`Parallelism`]).
    /// [`Parallelism::Sequential`] is the reference implementation;
    /// `Threads(n)` and `Async { workers, max_epoch_lag }` are
    /// bit-identical to it for any width and lag bound.
    pub parallelism: Parallelism,
    /// LRU bound on the fused scorer's cross-event probe memo (entries
    /// across all platform groups; each entry is one probe's candidate
    /// predictions — a few hundred bytes). The least-recently-used probe
    /// answer is evicted first, so the hottest probes stay memoized even
    /// under adversarial arrival mixes.
    ///
    /// # Panics
    ///
    /// Fleet construction panics if set to 0 (matching the plan cache's
    /// contract).
    pub probe_memo_capacity: usize,
    /// On a [`FleetEvent::ShardDown`], re-place the failing shard's live
    /// instances onto survivors in priority order (highest first),
    /// charging each move the destination board's full-restage migration
    /// cost; instances no survivor can absorb are shed. `false` sheds
    /// everything — the `fleet_chaos` bench's no-evacuation baseline.
    pub evacuate: bool,
    /// Rejected arrivals retry up to this many times before the
    /// rejection is final (`0` = the pre-retry behaviour: one attempt).
    /// Retries are deterministic: attempt `k` (0-based) re-enters
    /// admission `retry_backoff · 2^k` seconds after its rejection, and
    /// a retry that would land at or past the horizon is finalized as a
    /// rejection immediately.
    pub retry_limit: u32,
    /// Base backoff delay (seconds) of the first retry; doubles per
    /// attempt.
    pub retry_backoff: f64,
    /// Fleet-wide overload guard: after each event, if the worst loaded
    /// shard's mean predicted potential falls below this threshold, its
    /// lowest-priority instance is shed outright — dropping low-priority
    /// work *before* high-priority potential collapses. `0.0` (the
    /// default) disables the guard.
    pub overload_guard: f64,
    /// Route admission probes and health scans through the incremental
    /// shard-state index (see `crate::index`): probes are built once per
    /// *distinct shard state* and broadcast to equal-state shards, and
    /// the rebalancer/overload-guard's worst-shard read is O(log S)
    /// instead of one oracle prediction per shard per event. Decisions
    /// are bit-identical either way (property-tested); `false` keeps the
    /// full O(shards) scan as the identity oracle and A/B baseline.
    pub indexed_placement: bool,
    /// Observability configuration (see [`TelemetrySpec`]). Disabled by
    /// default; enabled or disabled, all placements, timelines, and
    /// [`FleetMetrics`] are bit-identical — telemetry lives strictly off
    /// the decision path (property-tested in `tests/telemetry.rs`).
    pub telemetry: TelemetrySpec,
}

impl FleetConfig {
    /// The configured staleness bound of the epoch-log executor: how many
    /// shard epochs a speculative probe may lag the live state before it
    /// is unconditionally rebuilt at apply time (0 under the barrier
    /// modes, where nothing is ever scored ahead of an apply). Set via
    /// [`Parallelism::Async`] on [`FleetConfig::parallelism`].
    pub fn max_epoch_lag(&self) -> u64 {
        self.parallelism.max_epoch_lag()
    }
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            sample_dt: 30.0,
            manager: ManagerConfig {
                mcts_iterations: 400,
                warm_iterations: 150,
                ..Default::default()
            },
            max_per_shard: 5,
            admission_floor: 0.05,
            decision_window: 60.0,
            rebalance_threshold: 0.3,
            rebalance_margin: 0.05,
            objective: GainObjective::default(),
            migration_aware: true,
            fused_scoring: true,
            parallelism: Parallelism::default(),
            probe_memo_capacity: PROBE_MEMO_BOUND,
            evacuate: true,
            retry_limit: 0,
            retry_backoff: 30.0,
            overload_guard: 0.0,
            indexed_placement: true,
            telemetry: TelemetrySpec::default(),
        }
    }
}

/// Where an offered request currently stands.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Disposition {
    /// Finally rejected: admission said no and no retries remain (or the
    /// requester departed while waiting to retry).
    Rejected,
    /// Rejected for now, with a backoff retry scheduled.
    Retrying,
    /// Live on a shard.
    Active { shard: usize, instance: InstanceId },
    /// Admitted earlier, then dropped by a shard failure or the overload
    /// guard.
    Shed,
}

/// One scheduled admission retry, ordered by `(at, request)` — the
/// request id breaks timestamp ties deterministically.
struct RetryEntry {
    at: f64,
    request: RequestId,
    model: ModelId,
    /// 1-based index of this retry attempt.
    attempt: u32,
}

/// Every piece of mutable bookkeeping one [`FleetExecutor::run`] carries
/// between events — split out so the fault-handling paths
/// (`crate::faults`) can update the same tallies the main loop does.
pub(crate) struct RunState {
    pub(crate) requests: HashMap<RequestId, Disposition>,
    pub(crate) placements: Vec<PlacementRecord>,
    /// Wall-clock placement-decision latencies, fed incrementally into a
    /// log-bucketed histogram — O(distinct buckets) memory instead of the
    /// old `Vec<Duration>`'s O(offered load) at the `fleet_massive` tier.
    pub(crate) latencies: Histogram,
    /// Wall-clock shard-failure handling latencies (same representation).
    pub(crate) evac_latencies: Histogram,
    pending_retries: Vec<RetryEntry>,
    pub(crate) admitted: u64,
    pub(crate) rejected: u64,
    pub(crate) migrations: u64,
    pub(crate) retries: u64,
    pub(crate) retry_admitted: u64,
    pub(crate) departed: u64,
    pub(crate) failures_injected: u64,
    pub(crate) throttle_events: u64,
    pub(crate) evacuated: u64,
    pub(crate) shed: u64,
    pub(crate) evacuation_stall_seconds: f64,
    pub(crate) tier_triaged: [u64; 3],
    pub(crate) tier_evacuated: [u64; 3],
    pub(crate) per_shard_admitted: Vec<u64>,
}

impl RunState {
    fn new(shards: usize) -> Self {
        Self {
            requests: HashMap::new(),
            placements: Vec::new(),
            latencies: Histogram::new(),
            evac_latencies: Histogram::new(),
            pending_retries: Vec::new(),
            admitted: 0,
            rejected: 0,
            migrations: 0,
            retries: 0,
            retry_admitted: 0,
            departed: 0,
            failures_injected: 0,
            throttle_events: 0,
            evacuated: 0,
            shed: 0,
            evacuation_stall_seconds: 0.0,
            tier_triaged: [0; 3],
            tier_evacuated: [0; 3],
            per_shard_admitted: vec![0; shards],
        }
    }

    /// Index of the earliest pending retry (ties broken by request id).
    fn next_retry(&self) -> Option<usize> {
        self.pending_retries
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.at.total_cmp(&b.1.at).then(a.1.request.cmp(&b.1.request)))
            .map(|(i, _)| i)
    }
}

/// The engine behind [`crate::FleetRuntime`]: owns the shards, the fused
/// scorer's probe memo, and the event loop that advances all shards
/// between global event barriers (see the module docs for the barrier
/// model and determinism argument).
pub struct FleetExecutor<'p, O: ThroughputOracle> {
    pub(crate) config: FleetConfig,
    /// Per-group oracle, indexed by `Shard::group`.
    pub(crate) group_oracles: Vec<&'p O>,
    /// Per-shard platform names, in shard order (the trace's fleet mix).
    pub(crate) platforms: Vec<String>,
    /// The fused scorer's cross-event memo: per-group oracle answers
    /// keyed by probe fingerprint, LRU-bounded by
    /// [`FleetConfig::probe_memo_capacity`]. A fingerprint fully
    /// determines the question (trial set, survivor placements, weights),
    /// so entries are pure and never stale.
    pub(crate) probe_memo: ProbeMemo,
    /// The incremental shard-state index behind
    /// [`FleetConfig::indexed_placement`] (unused when the flag is off).
    pub(crate) index: PlacementIndex,
    /// The observability collector behind [`FleetConfig::telemetry`] —
    /// strictly off the decision path (inert when disabled).
    pub(crate) telemetry: FleetTelemetry,
    /// Speculative probes of the epoch log's current lookahead window
    /// (empty under the barrier modes — see `crate::speculate`).
    pub(crate) spec: SpeculationCache,
    /// Last observed apply-time staleness per shard (epochs), fed to the
    /// telemetry sampler's `fleet_shard_epoch_lag` gauge — observability
    /// only, never read by a decision.
    pub(crate) epoch_lags: Vec<u64>,
    pub(crate) shards: Vec<Shard<'p, O>>,
}

/// Runs `f` over every shard — exclusively, one worker per shard — and
/// returns the results in canonical shard order regardless of completion
/// order. The free function (rather than a method) lets callers that
/// have already split the executor's fields borrow only the shard slice.
pub(crate) fn for_each_shard<'p, O, R, F>(
    parallelism: Parallelism,
    shards: &mut [Shard<'p, O>],
    f: F,
) -> Vec<R>
where
    O: ThroughputOracle,
    R: Send,
    F: Fn(usize, &mut Shard<'p, O>) -> R + Sync,
{
    let width = parallelism.width().min(shards.len());
    if width <= 1 {
        shards.iter_mut().enumerate().map(|(s, shard)| f(s, shard)).collect()
    } else {
        rayon::iter::par_map_slice_mut(shards, width, &f)
    }
}

impl<'p, O: ThroughputOracle> FleetExecutor<'p, O> {
    /// Builds the executor from a [`FleetSpec`] (see
    /// [`crate::FleetRuntime::new`] for the public entry point).
    pub(crate) fn new(spec: &FleetSpec<'p, O>, config: FleetConfig) -> Self {
        let mut shards = Vec::with_capacity(spec.shard_count());
        let mut group_oracles = Vec::with_capacity(spec.groups().len());
        for (g, group) in spec.groups().iter().enumerate() {
            group_oracles.push(group.oracle);
            let ideals = ideal_rates(group.platform, &ModelId::all());
            let runtime = DynamicRuntime::new(group.platform, config.sample_dt)
                .with_gain_objective(config.objective)
                .with_migration_awareness(config.migration_aware);
            for _ in 0..group.count {
                let i = shards.len();
                shards.push(Shard::new(
                    group.platform,
                    group.oracle,
                    g,
                    ideals.clone(),
                    RankMapMapper::new(
                        RankMapManager::new(group.platform, group.oracle, config.manager),
                        PriorityMode::Dynamic,
                        format!("shard-{i}"),
                    ),
                    runtime.session_with_ideals(ideals.clone()),
                ));
            }
        }
        Self {
            probe_memo: ProbeMemo::new(group_oracles.len(), config.probe_memo_capacity),
            group_oracles,
            platforms: spec.platform_names(),
            index: PlacementIndex::new(shards.len()),
            telemetry: FleetTelemetry::new(config.telemetry, shards.len(), config.sample_dt),
            spec: SpeculationCache::default(),
            epoch_lags: vec![0; shards.len()],
            config,
            shards,
        }
    }

    /// The worst loaded shard `(index, mean predicted potential)` among
    /// shards with something to shed (up, ≥ 2 live instances) — the
    /// rebalancer's and overload guard's shared health question. Indexed
    /// mode reads the health order's front in O(log S); scan mode runs
    /// the original parallel prediction fan-out. Both return the
    /// `min_by(total_cmp)` answer, first-minimal on ties.
    pub(crate) fn worst_loaded(&mut self) -> Option<(usize, f64)> {
        let timer = self.telemetry.stage(stage::REBALANCE_SCAN);
        let worst = if self.config.indexed_placement {
            let refile = self.telemetry.stage(stage::INDEX_REFILE);
            let refiled = self.index.refresh(&mut self.shards);
            self.telemetry.finish(refile);
            self.telemetry.count("fleet_index_refiled_total", refiled as u64);
            self.index.worst()
        } else {
            let means: Vec<Option<f64>> = self.for_each_shard(|_, shard| {
                if !shard.is_down() && shard.live_len() >= 2 {
                    shard.mean_potential()
                } else {
                    None
                }
            });
            means
                .into_iter()
                .enumerate()
                .filter_map(|(s, mean)| mean.map(|m| (s, m)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
        };
        self.telemetry.finish(timer);
        worst
    }

    /// Runs `f` over every shard at the current barrier (see
    /// [`for_each_shard`]).
    pub(crate) fn for_each_shard<R, F>(&mut self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &mut Shard<'p, O>) -> R + Sync,
    {
        for_each_shard(self.config.parallelism, &mut self.shards, f)
    }

    /// The epoch log's speculation fan: scores every arrival of the
    /// freshly pulled lookahead window against the current shard
    /// snapshots in one parallel pass, stamping each probe with its
    /// shard's epoch and placement class key for apply-time validation
    /// (see `crate::speculate`). Under indexed placement only the
    /// current class representatives build probes — the same shards the
    /// apply-time fan would consult; a representative that changes class
    /// before its entry is consumed simply falls back to a fresh build.
    ///
    /// Speculation only touches pure, invalidation-tracked shard memos
    /// (trial workloads, current-state snapshots) — never an epoch — so
    /// it is decision-neutral by construction.
    fn speculate(&mut self, jobs: &[(RequestId, ModelId)]) {
        let max_per_shard = self.config.max_per_shard;
        let rep_mask: Option<Vec<bool>> = if self.config.indexed_placement {
            let refile = self.telemetry.stage(stage::INDEX_REFILE);
            let refiled = self.index.refresh(&mut self.shards);
            self.telemetry.finish(refile);
            self.telemetry.count("fleet_index_refiled_total", refiled as u64);
            Some(self.index.representative_mask(None))
        } else {
            None
        };
        let timer = self.telemetry.stage(stage::SPECULATE);
        // Shard-major fan: each worker stamps its shard's snapshot
        // identity once and builds one probe per buffered arrival.
        let per_shard: Vec<Vec<Option<SpecEntry>>> =
            for_each_shard(self.config.parallelism, &mut self.shards, |s, shard| {
                if rep_mask.as_ref().is_some_and(|mask| !mask[s]) {
                    return jobs.iter().map(|_| None).collect();
                }
                let epoch = shard.epoch();
                let class_key = shard.placement_class_key();
                jobs.iter()
                    .map(|&(_, model)| {
                        Some(SpecEntry {
                            probe: shard.build_probe(s, model, max_per_shard),
                            epoch,
                            class_key: class_key.clone(),
                        })
                    })
                    .collect()
            });
        self.telemetry.finish(timer);
        // Transpose to request-major and file into the cache.
        let mut per_job: Vec<Vec<Option<SpecEntry>>> =
            jobs.iter().map(|_| Vec::with_capacity(per_shard.len())).collect();
        for shard_entries in per_shard {
            for (j, entry) in shard_entries.into_iter().enumerate() {
                per_job[j].push(entry);
            }
        }
        for (&(request, _), entries) in jobs.iter().zip(per_job) {
            self.spec.insert(request, entries);
        }
        self.telemetry.count("fleet_spec_batches_total", 1);
        self.telemetry.count("fleet_spec_probes_total", jobs.len() as u64);
    }

    /// One admission attempt for `request` at time `t` — a fresh arrival
    /// (`attempt == 0`) or a scheduled retry. A rejection with retries
    /// remaining re-enqueues the request with doubled backoff; one whose
    /// retry would land at or past the horizon is finalized immediately
    /// (the retry budget is bounded *and* the run always terminates).
    fn admission_attempt(
        &mut self,
        t: f64,
        request: RequestId,
        model: ModelId,
        attempt: u32,
        horizon: f64,
        state: &mut RunState,
    ) {
        let window = self.config.decision_window;
        let started = Instant::now();
        // The epoch log may have scored this arrival ahead of the apply
        // cursor; the entries are consumed exactly once (retries re-probe
        // fresh) and validated per shard inside the scoring fan.
        let speculated = self.spec.take(&request);
        let decision = self.place(model, speculated);
        state.latencies.record(started.elapsed().as_secs_f64());
        match decision {
            Some((s, delta)) => {
                let timer = self.telemetry.stage(stage::APPLY);
                let assigned =
                    self.shards[s].apply(t, &[DynamicEvent::arrive(t, model)], window);
                self.telemetry.finish(timer);
                state
                    .requests
                    .insert(request, Disposition::Active { shard: s, instance: assigned[0] });
                state.admitted += 1;
                if attempt > 0 {
                    state.retry_admitted += 1;
                }
                state.per_shard_admitted[s] += 1;
                self.telemetry.count("fleet_admitted_total", 1);
                if self.telemetry.enabled() {
                    self.telemetry.record(
                        t,
                        "admit",
                        None,
                        vec![
                            ("request", request.ordinal().to_string()),
                            ("model", format!("{model:?}")),
                            ("shard", s.to_string()),
                            ("delta", format!("{delta:.6}")),
                        ],
                    );
                }
                state.placements.push(PlacementRecord {
                    request,
                    at: t,
                    outcome: PlacementOutcome::Admitted { shard: s },
                    predicted_delta: delta,
                });
            }
            None => {
                let retry_at = t + self.config.retry_backoff * f64::powi(2.0, attempt as i32);
                if attempt < self.config.retry_limit && retry_at < horizon {
                    state.pending_retries.push(RetryEntry {
                        at: retry_at,
                        request,
                        model,
                        attempt: attempt + 1,
                    });
                    state.requests.insert(request, Disposition::Retrying);
                    state.retries += 1;
                    self.telemetry.count("fleet_deferred_total", 1);
                    if self.telemetry.enabled() {
                        self.telemetry.record(
                            t,
                            "defer",
                            None,
                            vec![
                                ("request", request.ordinal().to_string()),
                                ("retry_at", format!("{retry_at:.3}")),
                            ],
                        );
                    }
                    state.placements.push(PlacementRecord {
                        request,
                        at: t,
                        outcome: PlacementOutcome::Deferred,
                        predicted_delta: 0.0,
                    });
                } else {
                    state.requests.insert(request, Disposition::Rejected);
                    state.rejected += 1;
                    self.telemetry.count("fleet_rejected_total", 1);
                    if self.telemetry.enabled() {
                        self.telemetry.record(
                            t,
                            "reject",
                            None,
                            vec![("request", request.ordinal().to_string())],
                        );
                    }
                    state.placements.push(PlacementRecord {
                        request,
                        at: t,
                        outcome: PlacementOutcome::Rejected,
                        predicted_delta: 0.0,
                    });
                }
            }
        }
    }

    /// Handles one stream event at its timestamp `t`.
    fn handle_event(
        &mut self,
        event: &FleetEvent,
        horizon: f64,
        state: &mut RunState,
    ) {
        let t = event.at();
        let window = self.config.decision_window;
        match event {
            FleetEvent::Arrive { request, model, .. } => {
                self.admission_attempt(t, *request, *model, 0, horizon, state);
            }
            FleetEvent::Depart { request, .. } => {
                match state.requests.get(request).copied() {
                    Some(Disposition::Active { shard, instance }) => {
                        state.requests.remove(request);
                        state.departed += 1;
                        self.telemetry.count("fleet_departed_total", 1);
                        self.shards[shard].apply(
                            t,
                            &[DynamicEvent::depart(t, instance)],
                            window,
                        );
                    }
                    Some(Disposition::Retrying) => {
                        // The requester gave up while waiting on a
                        // backoff retry: the pending attempt is canceled
                        // (its queue entry is skipped when it fires) and
                        // the rejection becomes final.
                        state.requests.insert(*request, Disposition::Rejected);
                        state.rejected += 1;
                    }
                    // Rejected, shed, or unknown: nothing serving to stop.
                    _ => {}
                }
            }
            FleetEvent::SetPriorities { mode, .. } => {
                // A priority rotation re-maps *every* shard — the
                // widest barrier of the event loop, fanned across the
                // worker pool. It also invalidates every speculative
                // probe: the priority mode is a `build_probe` input the
                // placement class key deliberately omits (it never
                // differs between shards), so apply-time validation
                // cannot see a mode change — the flush makes sure no
                // pre-rotation probe survives to be validated at all.
                self.spec.flush();
                let timer = self.telemetry.stage(stage::REMAP);
                let ev = [DynamicEvent::SetPriorities { at: t, mode: mode.clone() }];
                for_each_shard(self.config.parallelism, &mut self.shards, |_, shard| {
                    shard.apply(t, &ev, window);
                });
                self.telemetry.finish(timer);
                self.telemetry.record(t, "set_priorities", None, Vec::new());
            }
            FleetEvent::ShardDown { shard, .. } => {
                if !self.shards[*shard].is_down() {
                    state.failures_injected += 1;
                    let cause = if self.telemetry.enabled() {
                        self.telemetry.record(
                            t,
                            "shard_down",
                            None,
                            vec![("shard", shard.to_string())],
                        )
                    } else {
                        None
                    };
                    let timer = self.telemetry.stage(stage::EVACUATION);
                    let started = Instant::now();
                    self.fail_shard(t, *shard, state, cause);
                    state.evac_latencies.record(started.elapsed().as_secs_f64());
                    self.telemetry.finish(timer);
                }
            }
            FleetEvent::ShardUp { shard, .. } => {
                if self.shards[*shard].is_down() {
                    self.shards[*shard].revive(t, window);
                    if self.telemetry.enabled() {
                        self.telemetry.record(
                            t,
                            "shard_up",
                            None,
                            vec![("shard", shard.to_string())],
                        );
                    }
                }
            }
            FleetEvent::ShardThrottle { shard, factor, .. } => {
                let target = &mut self.shards[*shard];
                // Throttles on a down shard are moot — repair restores
                // nominal speed — and re-asserting the current factor is
                // an idempotent no-op.
                if !target.is_down() && target.throttle() != *factor {
                    target.set_throttle(t, *factor, window);
                    state.throttle_events += 1;
                    if self.telemetry.enabled() {
                        self.telemetry.record(
                            t,
                            "throttle",
                            None,
                            vec![
                                ("shard", shard.to_string()),
                                ("factor", format!("{factor:.3}")),
                            ],
                        );
                    }
                }
            }
        }
    }

    /// Runs a sorted fleet event stream to `horizon`, consuming the
    /// executor.
    ///
    /// # Panics
    ///
    /// Panics if `events` is not sorted by time, reaches outside
    /// `[0, horizon)`, or names a shard index beyond the fleet.
    pub(crate) fn run(self, events: &[FleetEvent], horizon: f64) -> FleetOutcome {
        self.run_stream(events.iter().cloned(), horizon)
    }

    /// [`FleetExecutor::run`] over a pull-based event source — the
    /// million-instance entry point: paired with
    /// [`crate::load::LoadStream`], the full event vector is never
    /// materialized. Validation (sortedness, horizon bounds, shard
    /// indices) happens incrementally as events are pulled, with the same
    /// panic messages as the slice path.
    pub(crate) fn run_stream<I>(mut self, events: I, horizon: f64) -> FleetOutcome
    where
        I: IntoIterator<Item = FleetEvent>,
    {
        let mut events = events.into_iter();
        // The epoch log's lookahead window: barrier modes keep it at one
        // event (pull one, apply one — the classic loop); `Async` pulls
        // up to `max_epoch_lag + 1` events and speculatively scores the
        // batch's arrivals in one parallel fan before any of them apply.
        let window_len = self.config.parallelism.lookahead() as usize + 1;
        let mut buffer: VecDeque<FleetEvent> = VecDeque::with_capacity(window_len);
        let mut last_at = f64::NEG_INFINITY;
        let mut state = RunState::new(self.shards.len());
        let mut offered = 0u64;
        // Stream events and scheduled retries merge into one ordered
        // walk; at equal timestamps the retry goes first (it was offered
        // strictly earlier). Every action is followed by the rebalance
        // and overload-guard barriers, exactly like a stream event.
        loop {
            if buffer.is_empty() {
                // Refill the window. Validation (sortedness, horizon
                // bounds, shard indices) happens as events are pulled,
                // with the same panic messages as before the epoch log.
                while buffer.len() < window_len {
                    let Some(event) = events.next() else { break };
                    assert!(event.at() >= last_at, "fleet events must be sorted by time");
                    assert!(
                        (0.0..horizon).contains(&event.at()),
                        "fleet events must lie within [0, horizon)"
                    );
                    if let FleetEvent::ShardDown { shard, .. }
                    | FleetEvent::ShardUp { shard, .. }
                    | FleetEvent::ShardThrottle { shard, .. } = &event
                    {
                        assert!(
                            *shard < self.shards.len(),
                            "fault events must name shards within the fleet"
                        );
                    }
                    last_at = event.at();
                    buffer.push_back(event);
                }
                if self.config.parallelism.is_async() && !buffer.is_empty() {
                    let jobs: Vec<(RequestId, ModelId)> = buffer
                        .iter()
                        .filter_map(|event| match event {
                            FleetEvent::Arrive { request, model, .. } => {
                                Some((*request, *model))
                            }
                            _ => None,
                        })
                        .collect();
                    if !jobs.is_empty() {
                        self.speculate(&jobs);
                    }
                }
            }
            let retry = state.next_retry();
            let take_retry = match (retry, buffer.front()) {
                (Some(i), Some(e)) => state.pending_retries[i].at <= e.at(),
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let t;
            if take_retry {
                let entry = state.pending_retries.swap_remove(retry.expect("checked"));
                // A Depart while waiting canceled this attempt.
                if !matches!(state.requests.get(&entry.request), Some(Disposition::Retrying))
                {
                    continue;
                }
                t = entry.at;
                self.admission_attempt(
                    entry.at,
                    entry.request,
                    entry.model,
                    entry.attempt,
                    horizon,
                    &mut state,
                );
            } else {
                let event = buffer.pop_front().expect("checked non-empty above");
                if matches!(event, FleetEvent::Arrive { .. }) {
                    offered += 1;
                }
                t = event.at();
                self.handle_event(&event, horizon, &mut state);
            }
            // Departures free capacity and arrivals shift contention —
            // both are rebalance opportunities; overload sheds run after,
            // on the post-rebalance fleet.
            if let Some((src, dst)) = self.maybe_rebalance(t, &mut state.requests) {
                state.migrations += 1;
                state.per_shard_admitted[dst] += 1;
                self.telemetry.count("fleet_migrations_total", 1);
                if self.telemetry.enabled() {
                    self.telemetry.record(
                        t,
                        "rebalance",
                        None,
                        vec![("from", src.to_string()), ("to", dst.to_string())],
                    );
                }
            }
            self.overload_guard(t, &mut state);
            // The sampling hook runs last, on the post-barrier fleet. It
            // only reads memoized pure shard state, so enabled-vs-
            // disabled runs stay bit-identical.
            self.telemetry.maybe_sample(
                t,
                &mut self.shards,
                &state.per_shard_admitted,
                &self.epoch_lags,
            );
        }
        // The closing barrier: every shard's last open segment is closed
        // (and its timeline samples emitted) concurrently, then collected
        // in shard order.
        let live_at_end = state
            .requests
            .values()
            .filter(|d| matches!(d, Disposition::Active { .. }))
            .count() as u64;
        let Self { config, platforms, mut shards, probe_memo, telemetry, .. } = self;
        for_each_shard(config.parallelism, &mut shards, |_, shard| {
            shard.session.finish(horizon);
        });
        // Snapshot before the shards are consumed into timelines: the
        // overlay pulls absolute totals from the probe memo and every
        // shard's plan cache, and folds in the wall-latency histograms
        // the run measured unconditionally.
        let telemetry_snapshot = telemetry.snapshot(
            &probe_memo,
            &shards,
            Some(&state.latencies),
            Some(&state.evac_latencies),
        );
        let timelines: Vec<Vec<TimelinePoint>> =
            shards.into_iter().map(|shard| shard.session.into_timeline()).collect();
        let per_shard_potential: Vec<f64> =
            timelines.iter().map(|tl| timeline_average_potential(tl)).collect();
        let aggregate_potential_seconds: f64 = timelines
            .iter()
            .flat_map(|tl| tl.iter())
            .map(|pt| pt.potentials.iter().sum::<f64>() * pt.span)
            .sum();
        debug_assert_eq!(offered, state.admitted + state.rejected, "every offer resolves");
        FleetOutcome {
            metrics: FleetMetrics {
                shards: per_shard_potential.len(),
                offered,
                admitted: state.admitted,
                rejected: state.rejected,
                migrations: state.migrations,
                per_shard_potential,
                per_shard_admitted: state.per_shard_admitted,
                per_shard_platform: platforms,
                aggregate_potential_seconds,
                failures_injected: state.failures_injected,
                throttle_events: state.throttle_events,
                evacuated: state.evacuated,
                shed: state.shed,
                retries: state.retries,
                retry_admitted: state.retry_admitted,
                evacuation_stall_seconds: state.evacuation_stall_seconds,
                departed: state.departed,
                live_at_end,
                tier_triaged: state.tier_triaged,
                tier_evacuated: state.tier_evacuated,
            },
            placements: state.placements,
            timelines,
            placement_latency: LatencyStats::from_histogram(&state.latencies),
            evacuation_latency: LatencyStats::from_histogram(&state.evac_latencies),
            telemetry: telemetry_snapshot,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankmap_core::oracle::AnalyticalOracle;

    #[test]
    fn executor_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<FleetExecutor<'static, AnalyticalOracle<'static>>>();
    }

    #[test]
    fn parallelism_width_floors_at_one() {
        assert_eq!(Parallelism::Sequential.width(), 1);
        assert_eq!(Parallelism::Threads(0).width(), 1);
        assert_eq!(Parallelism::Threads(6).width(), 6);
        assert_eq!(Parallelism::Async { workers: 0, max_epoch_lag: 4 }.width(), 1);
        assert_eq!(Parallelism::Async { workers: 3, max_epoch_lag: 4 }.width(), 3);
    }

    #[test]
    fn lookahead_is_async_only_and_bounded() {
        assert_eq!(Parallelism::Sequential.lookahead(), 0);
        assert_eq!(Parallelism::Threads(8).lookahead(), 0);
        assert_eq!(Parallelism::Async { workers: 2, max_epoch_lag: 5 }.lookahead(), 5);
        // A huge lag bound still buffers a bounded window; validation
        // keeps honoring the configured bound.
        let huge = Parallelism::Async { workers: 2, max_epoch_lag: u64::MAX };
        assert_eq!(huge.lookahead(), LOOKAHEAD_BOUND);
        assert_eq!(huge.max_epoch_lag(), u64::MAX);
    }

    #[test]
    fn config_exposes_the_lag_bound() {
        assert_eq!(FleetConfig::default().max_epoch_lag(), 0);
        let config = FleetConfig {
            parallelism: Parallelism::Async { workers: 4, max_epoch_lag: 7 },
            ..Default::default()
        };
        assert_eq!(config.max_epoch_lag(), 7);
    }
}
