//! The deterministic shard-parallel fleet executor.
//!
//! [`FleetExecutor`] owns the shards and drives the event loop. Its
//! concurrency model is **global event barriers**: the sorted event
//! stream is processed one event at a time, and *within* each event every
//! piece of per-shard work — placement probes, `SetPriorities` remaps,
//! the rebalancer's health scan, the source/destination applies of a
//! migration, the final timeline close — fans out across up to
//! [`Parallelism::Threads`] worker threads and joins before the next
//! event starts. Between barriers no two threads ever touch the same
//! shard: work is partitioned *by shard* (`&mut Shard` per worker), the
//! shards are owned `Send` state, and results are merged back in
//! canonical shard order.
//!
//! **Determinism argument.** Every per-shard computation is a pure
//! function of that shard's state (sessions, mappers and oracles are
//! deterministic given their seeds), the merge order is the canonical
//! shard index — never completion order — and cross-shard decisions
//! (admission, rebalance victim/destination) are taken serially at the
//! barrier from the merged score vector exactly as the sequential
//! reference does. No floating-point sum ever changes its association
//! order, so [`Parallelism::Threads`] with *any* `n` produces placements,
//! timelines, metrics, and trace replays **bit-identical** to
//! [`Parallelism::Sequential`] (property-tested in
//! `crates/fleet/tests/parallel.rs`).

use crate::load::{FleetEvent, RequestId};
use crate::metrics::{FleetMetrics, LatencyStats, PlacementOutcome, PlacementRecord};
use crate::placement::{ProbeMemo, PROBE_MEMO_BOUND};
use crate::runtime::FleetOutcome;
use crate::shard::Shard;
use crate::spec::FleetSpec;
use rankmap_core::dataset::ideal_rates;
use rankmap_core::manager::{ManagerConfig, RankMapManager};
use rankmap_core::oracle::ThroughputOracle;
use rankmap_core::priority::PriorityMode;
use rankmap_core::runtime::{
    timeline_average_potential, DynamicEvent, DynamicRuntime, GainObjective, InstanceId,
    RankMapMapper, TimelinePoint,
};
use rankmap_models::ModelId;
use std::collections::HashMap;
use std::time::Instant;

/// How shard work between event barriers is executed.
///
/// Both modes run the *same* decision logic over the shards in canonical
/// order and are bit-identical by construction (and by property test);
/// the choice only decides whether per-shard work items are spread across
/// worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// Advance every shard in turn on the calling thread — the reference
    /// implementation the parallel path is measured against.
    Sequential,
    /// Fan per-shard work across up to `n` worker threads between
    /// barriers (`Threads(1)` is the serial schedule on the executor's
    /// code path; `n` is not clamped to the host's core count, so an
    /// oversubscribed width still exercises real concurrency).
    Threads(usize),
}

impl Parallelism {
    /// The fan-out width this mode permits.
    pub(crate) fn width(self) -> usize {
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Threads(n) => n.max(1),
        }
    }
}

/// One worker thread per host core — the production default. On a
/// single-core host this degrades to the serial schedule with zero spawn
/// overhead.
impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::Threads(rayon::current_num_threads())
    }
}

/// Fleet-wide configuration (per-shard manager settings included).
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Timeline sampling interval of every shard session (seconds).
    pub sample_dt: f64,
    /// Per-shard manager configuration (search budgets, plan-cache
    /// capacity, ...).
    pub manager: ManagerConfig,
    /// Hard per-shard concurrency cap — the admission backstop.
    pub max_per_shard: usize,
    /// Minimum predicted potential (fraction of the *hosting shard's*
    /// ideal rate) an arrival must reach on its best candidate shard to
    /// be admitted; below it the request is rejected.
    pub admission_floor: f64,
    /// Expected residency window handed to shard sessions as the remap
    /// decision's integration horizon (seconds).
    pub decision_window: f64,
    /// A shard whose mean predicted potential falls below this value is a
    /// rebalance candidate.
    pub rebalance_threshold: f64,
    /// Required predicted improvement of the source shard's mean
    /// potential for a rebalance migration to fire.
    pub rebalance_margin: f64,
    /// Remap-gain objective of every shard runtime.
    pub objective: GainObjective,
    /// Migration awareness of every shard runtime.
    pub migration_aware: bool,
    /// Whether placement probes are answered through one fused
    /// [`ThroughputOracle::predict_grouped`] call per platform group
    /// (with duplicate probes deduplicated) instead of one
    /// `predict_batch` call per shard. Decisions are bit-identical either
    /// way; `false` keeps the serial path for A/B benchmarking.
    pub fused_scoring: bool,
    /// How shard work between event barriers is executed (see
    /// [`Parallelism`]). [`Parallelism::Sequential`] is the reference
    /// implementation; `Threads(n)` is bit-identical to it.
    pub parallelism: Parallelism,
    /// LRU bound on the fused scorer's cross-event probe memo (entries
    /// across all platform groups; each entry is one probe's candidate
    /// predictions — a few hundred bytes). The least-recently-used probe
    /// answer is evicted first, so the hottest probes stay memoized even
    /// under adversarial arrival mixes.
    ///
    /// # Panics
    ///
    /// Fleet construction panics if set to 0 (matching the plan cache's
    /// contract).
    pub probe_memo_capacity: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            sample_dt: 30.0,
            manager: ManagerConfig {
                mcts_iterations: 400,
                warm_iterations: 150,
                ..Default::default()
            },
            max_per_shard: 5,
            admission_floor: 0.05,
            decision_window: 60.0,
            rebalance_threshold: 0.3,
            rebalance_margin: 0.05,
            objective: GainObjective::default(),
            migration_aware: true,
            fused_scoring: true,
            parallelism: Parallelism::default(),
            probe_memo_capacity: PROBE_MEMO_BOUND,
        }
    }
}

/// Where an admitted request currently runs.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Disposition {
    Rejected,
    Active { shard: usize, instance: InstanceId },
}

/// The engine behind [`crate::FleetRuntime`]: owns the shards, the fused
/// scorer's probe memo, and the event loop that advances all shards
/// between global event barriers (see the module docs for the barrier
/// model and determinism argument).
pub struct FleetExecutor<'p, O: ThroughputOracle> {
    pub(crate) config: FleetConfig,
    /// Per-group oracle, indexed by `Shard::group`.
    pub(crate) group_oracles: Vec<&'p O>,
    /// Per-shard platform names, in shard order (the trace's fleet mix).
    pub(crate) platforms: Vec<String>,
    /// The fused scorer's cross-event memo: per-group oracle answers
    /// keyed by probe fingerprint, LRU-bounded by
    /// [`FleetConfig::probe_memo_capacity`]. A fingerprint fully
    /// determines the question (trial set, survivor placements, weights),
    /// so entries are pure and never stale.
    pub(crate) probe_memo: ProbeMemo,
    pub(crate) shards: Vec<Shard<'p, O>>,
}

/// Runs `f` over every shard — exclusively, one worker per shard — and
/// returns the results in canonical shard order regardless of completion
/// order. The free function (rather than a method) lets callers that
/// have already split the executor's fields borrow only the shard slice.
pub(crate) fn for_each_shard<'p, O, R, F>(
    parallelism: Parallelism,
    shards: &mut [Shard<'p, O>],
    f: F,
) -> Vec<R>
where
    O: ThroughputOracle,
    R: Send,
    F: Fn(usize, &mut Shard<'p, O>) -> R + Sync,
{
    let width = parallelism.width().min(shards.len());
    if width <= 1 {
        shards.iter_mut().enumerate().map(|(s, shard)| f(s, shard)).collect()
    } else {
        rayon::iter::par_map_slice_mut(shards, width, &f)
    }
}

impl<'p, O: ThroughputOracle> FleetExecutor<'p, O> {
    /// Builds the executor from a [`FleetSpec`] (see
    /// [`crate::FleetRuntime::new`] for the public entry point).
    pub(crate) fn new(spec: &FleetSpec<'p, O>, config: FleetConfig) -> Self {
        let mut shards = Vec::with_capacity(spec.shard_count());
        let mut group_oracles = Vec::with_capacity(spec.groups().len());
        for (g, group) in spec.groups().iter().enumerate() {
            group_oracles.push(group.oracle);
            let ideals = ideal_rates(group.platform, &ModelId::all());
            let runtime = DynamicRuntime::new(group.platform, config.sample_dt)
                .with_gain_objective(config.objective)
                .with_migration_awareness(config.migration_aware);
            for _ in 0..group.count {
                let i = shards.len();
                shards.push(Shard::new(
                    group.platform,
                    group.oracle,
                    g,
                    ideals.clone(),
                    RankMapMapper::new(
                        RankMapManager::new(group.platform, group.oracle, config.manager),
                        PriorityMode::Dynamic,
                        format!("shard-{i}"),
                    ),
                    runtime.session_with_ideals(ideals.clone()),
                ));
            }
        }
        Self {
            probe_memo: ProbeMemo::new(group_oracles.len(), config.probe_memo_capacity),
            config,
            group_oracles,
            platforms: spec.platform_names(),
            shards,
        }
    }

    /// Runs `f` over every shard at the current barrier (see
    /// [`for_each_shard`]).
    pub(crate) fn for_each_shard<R, F>(&mut self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &mut Shard<'p, O>) -> R + Sync,
    {
        for_each_shard(self.config.parallelism, &mut self.shards, f)
    }

    /// Runs a sorted fleet event stream to `horizon`, consuming the
    /// executor.
    ///
    /// # Panics
    ///
    /// Panics if `events` is not sorted by time or reaches outside
    /// `[0, horizon)`.
    pub(crate) fn run(mut self, events: &[FleetEvent], horizon: f64) -> FleetOutcome {
        assert!(
            events.windows(2).all(|w| w[0].at() <= w[1].at()),
            "fleet events must be sorted by time"
        );
        assert!(
            events.iter().all(|e| (0.0..horizon).contains(&e.at())),
            "fleet events must lie within [0, horizon)"
        );
        let window = self.config.decision_window;
        let mut requests: HashMap<RequestId, Disposition> = HashMap::new();
        let mut placements = Vec::new();
        let mut latencies = Vec::new();
        let mut admitted = 0u64;
        let mut rejected = 0u64;
        let mut migrations = 0u64;
        let mut per_shard_admitted = vec![0u64; self.shards.len()];
        for event in events {
            let t = event.at();
            match event {
                FleetEvent::Arrive { request, model, .. } => {
                    let started = Instant::now();
                    let decision = self.place(*model);
                    latencies.push(started.elapsed());
                    match decision {
                        Some((s, delta)) => {
                            let assigned = self.shards[s].apply(
                                t,
                                &[DynamicEvent::arrive(t, *model)],
                                window,
                            );
                            requests.insert(
                                *request,
                                Disposition::Active { shard: s, instance: assigned[0] },
                            );
                            admitted += 1;
                            per_shard_admitted[s] += 1;
                            placements.push(PlacementRecord {
                                request: *request,
                                at: t,
                                outcome: PlacementOutcome::Admitted { shard: s },
                                predicted_delta: delta,
                            });
                        }
                        None => {
                            requests.insert(*request, Disposition::Rejected);
                            rejected += 1;
                            placements.push(PlacementRecord {
                                request: *request,
                                at: t,
                                outcome: PlacementOutcome::Rejected,
                                predicted_delta: 0.0,
                            });
                        }
                    }
                }
                FleetEvent::Depart { request, .. } => {
                    if let Some(Disposition::Active { shard, instance }) =
                        requests.remove(request)
                    {
                        self.shards[shard].apply(
                            t,
                            &[DynamicEvent::depart(t, instance)],
                            window,
                        );
                    }
                }
                FleetEvent::SetPriorities { mode, .. } => {
                    // A priority rotation re-maps *every* shard — the
                    // widest barrier of the event loop, fanned across the
                    // worker pool.
                    let ev = [DynamicEvent::SetPriorities { at: t, mode: mode.clone() }];
                    self.for_each_shard(|_, shard| {
                        shard.apply(t, &ev, window);
                    });
                }
            }
            // Departures free capacity and arrivals shift contention —
            // both are rebalance opportunities.
            if let Some((_, dst)) = self.maybe_rebalance(t, &mut requests) {
                migrations += 1;
                per_shard_admitted[dst] += 1;
            }
        }
        // The closing barrier: every shard's last open segment is closed
        // (and its timeline samples emitted) concurrently, then collected
        // in shard order.
        let Self { config, platforms, mut shards, .. } = self;
        for_each_shard(config.parallelism, &mut shards, |_, shard| {
            shard.session.finish(horizon);
        });
        let timelines: Vec<Vec<TimelinePoint>> =
            shards.into_iter().map(|shard| shard.session.into_timeline()).collect();
        let per_shard_potential: Vec<f64> =
            timelines.iter().map(|tl| timeline_average_potential(tl)).collect();
        let aggregate_potential_seconds: f64 = timelines
            .iter()
            .flat_map(|tl| tl.iter())
            .map(|pt| pt.potentials.iter().sum::<f64>() * pt.span)
            .sum();
        FleetOutcome {
            metrics: FleetMetrics {
                shards: per_shard_potential.len(),
                offered: admitted + rejected,
                admitted,
                rejected,
                migrations,
                per_shard_potential,
                per_shard_admitted,
                per_shard_platform: platforms,
                aggregate_potential_seconds,
            },
            placements,
            timelines,
            placement_latency: LatencyStats::from_durations(latencies),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankmap_core::oracle::AnalyticalOracle;

    #[test]
    fn executor_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<FleetExecutor<'static, AnalyticalOracle<'static>>>();
    }

    #[test]
    fn parallelism_width_floors_at_one() {
        assert_eq!(Parallelism::Sequential.width(), 1);
        assert_eq!(Parallelism::Threads(0).width(), 1);
        assert_eq!(Parallelism::Threads(6).width(), 6);
    }
}
