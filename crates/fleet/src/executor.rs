//! The deterministic shard-parallel fleet executor.
//!
//! [`FleetExecutor`] owns the shards and drives the event loop. Two
//! concurrency models share one decision path:
//!
//! * **Global event barriers** ([`Parallelism::Threads`]): the sorted
//!   event stream is processed one event at a time, and *within* each
//!   event every piece of per-shard work — placement probes,
//!   `SetPriorities` remaps, the rebalancer's health scan, the
//!   source/destination applies of a migration, the final timeline
//!   close — fans out across up to `n` worker threads and joins before
//!   the next event starts.
//! * **The epoch log** ([`Parallelism::Async`]): the executor pulls a
//!   *window* of up to `max_epoch_lag + 1` events of the shared ordered
//!   log ahead of the apply cursor and speculatively scores every
//!   buffered arrival against the current — soon to be slightly stale —
//!   shard snapshots in one parallel fan, each probe stamped with its
//!   shard's epoch counter and placement class key (see
//!   `crate::speculate`). Applies still proceed in strict log order;
//!   at apply time each speculative probe is validated per shard (epoch
//!   unchanged → reuse; lag within the bound and class key equal →
//!   revalidate and reuse; otherwise re-probe fresh), so one slow
//!   shard's remap no longer stalls the probe work of every event
//!   behind it at a per-event barrier.
//! * **Apply lanes** (`Async { apply_lanes: true, .. }`): the epoch
//!   log's remaining serial stage — the apply cursor itself — splits
//!   into per-shard lanes (see `crate::lanes`). A commutativity analysis
//!   over the pulled window partitions log entries: an event whose state
//!   mutation touches exactly one shard (a validated admission whose
//!   winner is pinned, a departure, a thermal derate) *prepares* its
//!   apply on that shard's lane concurrently with other lanes, while
//!   cross-shard events (admission fan-outs, `SetPriorities`,
//!   `ShardDown` evacuations, window refills) are fences that drain the
//!   batch. A serial commit walk then retires every prepared apply in
//!   strict log order — validated by the same shard-epoch stamps the
//!   speculation layer uses, and re-applied directly if an intervening
//!   cross-shard decision (rebalance, overload shed) invalidated the
//!   capture — so out-of-order execution never reorders a decision.
//!   `apply_lanes: false` keeps the serial cursor as the bit-identity
//!   oracle.
//!
//! In all modes no two threads ever touch the same shard: work is
//! partitioned *by shard* (`&mut Shard` per worker), the shards are
//! owned `Send` state, and results are merged back in canonical shard
//! order.
//!
//! **Determinism argument.** Every per-shard computation is a pure
//! function of that shard's state (sessions, mappers and oracles are
//! deterministic given their seeds), the merge order is the canonical
//! shard index — never completion order — and cross-shard decisions
//! (admission, rebalance victim/destination) are taken serially from the
//! merged score vector exactly as the sequential reference does. A
//! reused speculative probe is bit-identical to a fresh build — the
//! epoch/class-key validation proves its snapshot is (still, or again)
//! the live shard state, and `build_probe` is a pure function of that
//! state. A lane-prepared apply is pure until its commit (the shard is
//! left untouched; every mutation is captured), commits retire in log
//! order, and a capture whose shard-epoch stamp went stale is discarded
//! for a direct apply at its log position — so the lane scheduler
//! changes *when work is computed*, never *what is decided*. No
//! floating-point sum ever changes its association order, so
//! [`Parallelism::Threads`] with *any* `n` and [`Parallelism::Async`]
//! with *any* worker count, lag bound, and `apply_lanes` setting produce
//! placements, timelines, metrics, and trace replays **bit-identical**
//! to [`Parallelism::Sequential`] (property-tested in
//! `crates/fleet/tests/parallel.rs` and `crates/fleet/tests/async_exec.rs`).

use crate::index::PlacementIndex;
use crate::lanes::{LaneBatch, LaneKind};
use crate::load::{FleetEvent, RequestId};
use crate::metrics::{FleetMetrics, LatencyStats, PlacementOutcome, PlacementRecord};
use crate::placement::{ProbeMemo, PROBE_MEMO_BOUND};
use crate::runtime::FleetOutcome;
use crate::shard::{Shard, ShardPrepared};
use crate::spec::FleetSpec;
use crate::speculate::{SpecEntry, SpeculationCache};
use crate::telemetry::{stage, FleetTelemetry, TelemetrySpec};
use rankmap_core::dataset::ideal_rates;
use rankmap_core::manager::{ManagerConfig, RankMapManager};
use rankmap_core::oracle::ThroughputOracle;
use rankmap_core::priority::PriorityMode;
use rankmap_core::runtime::{
    timeline_average_potential, DynamicEvent, DynamicRuntime, GainObjective, InstanceId,
    RankMapMapper, TimelinePoint,
};
use rankmap_models::ModelId;
use rankmap_telemetry::Histogram;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::time::Instant;

/// Upper bound on the epoch log's lookahead window (events buffered and
/// speculatively scored ahead of the apply cursor), bounding speculation
/// memory at any lag bound. Configuring
/// [`Parallelism::Async`]`::max_epoch_lag` above it is rejected at fleet
/// construction with [`FleetConfigError::MaxEpochLagBeyondLookahead`]: a
/// probe filed by a window of at most `LOOKAHEAD_BOUND + 1` events can
/// never lag further than the window itself, so the excess bound would
/// silently buy nothing.
pub const LOOKAHEAD_BOUND: u64 = 256;

/// How shard work is executed.
///
/// Every mode runs the *same* decision logic over the shards in canonical
/// order and is bit-identical to [`Parallelism::Sequential`] by
/// construction (and by property test); the choice only decides whether
/// per-shard work items are spread across worker threads — and, for
/// [`Parallelism::Async`], whether probe work may run ahead of the apply
/// cursor instead of waiting at a per-event barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// Advance every shard in turn on the calling thread — the reference
    /// implementation and the determinism oracle the other modes are
    /// measured against.
    Sequential,
    /// Fan per-shard work across up to `n` worker threads between global
    /// event barriers (`Threads(1)` is the serial schedule on the
    /// executor's code path; `n` is not clamped to the host's core count,
    /// so an oversubscribed width still exercises real concurrency).
    Threads(usize),
    /// Barrier-free epoch-log execution: up to `max_epoch_lag + 1`
    /// events are pulled ahead of the apply cursor and their arrivals
    /// speculatively probe-scored against current shard snapshots across
    /// `workers` threads; each speculative probe is validated at apply
    /// time against the shard's epoch counter and placement class key,
    /// and re-probed fresh on staleness beyond
    /// [`FleetConfig::max_epoch_lag`] or a failed validation (see
    /// `crate::speculate`). `Async { workers, max_epoch_lag: 0, .. }`
    /// degenerates to the per-event barrier schedule of
    /// `Threads(workers)`.
    Async {
        /// Fan-out width of every per-shard barrier and speculation fan.
        workers: usize,
        /// Staleness bound: how many shard epochs a speculative probe may
        /// lag the live state and still be revalidated (by class key)
        /// instead of unconditionally rebuilt. Fleet construction rejects
        /// values above [`LOOKAHEAD_BOUND`] (see
        /// [`FleetConfigError::MaxEpochLagBeyondLookahead`]).
        max_epoch_lag: u64,
        /// Also retire applies through the out-of-order lane scheduler:
        /// single-shard applies *prepare* concurrently on per-shard lanes
        /// and a serial walk commits them in log order, with cross-shard
        /// events acting as fences (see `crate::lanes` and the module
        /// docs' determinism argument). `false` keeps PR 9's serial apply
        /// cursor — the bit-identity oracle the lane scheduler is
        /// property-tested against.
        apply_lanes: bool,
    },
}

impl Parallelism {
    /// The fan-out width this mode permits.
    pub(crate) fn width(self) -> usize {
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Async { workers, .. } => workers.max(1),
        }
    }

    /// How many events the executor pulls ahead of the apply cursor —
    /// the epoch log's speculation window. 0 under the barrier modes.
    pub(crate) fn lookahead(self) -> u64 {
        match self {
            Parallelism::Async { max_epoch_lag, .. } => max_epoch_lag.min(LOOKAHEAD_BOUND),
            _ => 0,
        }
    }

    /// The staleness bound of apply-time validation (see
    /// [`Parallelism::Async`]); 0 under the barrier modes.
    pub fn max_epoch_lag(self) -> u64 {
        match self {
            Parallelism::Async { max_epoch_lag, .. } => max_epoch_lag,
            _ => 0,
        }
    }

    /// Whether this mode speculates ahead of the apply cursor.
    pub(crate) fn is_async(self) -> bool {
        matches!(self, Parallelism::Async { .. })
    }

    /// Whether applies retire through the out-of-order lane scheduler
    /// (see `crate::lanes`); only [`Parallelism::Async`] can opt in.
    pub(crate) fn lanes(self) -> bool {
        matches!(self, Parallelism::Async { apply_lanes: true, .. })
    }
}

/// One worker thread per host core — the production default. On a
/// single-core host this degrades to the serial schedule with zero spawn
/// overhead.
impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::Threads(rayon::current_num_threads())
    }
}

/// Fleet-wide configuration (per-shard manager settings included).
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Timeline sampling interval of every shard session (seconds).
    pub sample_dt: f64,
    /// Per-shard manager configuration (search budgets, plan-cache
    /// capacity, ...).
    pub manager: ManagerConfig,
    /// Hard per-shard concurrency cap — the admission backstop.
    pub max_per_shard: usize,
    /// Minimum predicted potential (fraction of the *hosting shard's*
    /// ideal rate) an arrival must reach on its best candidate shard to
    /// be admitted; below it the request is rejected.
    pub admission_floor: f64,
    /// Expected residency window handed to shard sessions as the remap
    /// decision's integration horizon (seconds).
    pub decision_window: f64,
    /// A shard whose mean predicted potential falls below this value is a
    /// rebalance candidate.
    pub rebalance_threshold: f64,
    /// Required predicted improvement of the source shard's mean
    /// potential for a rebalance migration to fire.
    pub rebalance_margin: f64,
    /// Remap-gain objective of every shard runtime.
    pub objective: GainObjective,
    /// Migration awareness of every shard runtime.
    pub migration_aware: bool,
    /// Whether placement probes are answered through one fused
    /// [`ThroughputOracle::predict_grouped`] call per platform group
    /// (with duplicate probes deduplicated) instead of one
    /// `predict_batch` call per shard. Decisions are bit-identical either
    /// way; `false` keeps the serial path for A/B benchmarking.
    pub fused_scoring: bool,
    /// How shard work is executed (see [`Parallelism`]).
    /// [`Parallelism::Sequential`] is the reference implementation;
    /// `Threads(n)` and `Async { workers, max_epoch_lag }` are
    /// bit-identical to it for any width and lag bound.
    pub parallelism: Parallelism,
    /// LRU bound on the fused scorer's cross-event probe memo (entries
    /// across all platform groups; each entry is one probe's candidate
    /// predictions — a few hundred bytes). The least-recently-used probe
    /// answer is evicted first, so the hottest probes stay memoized even
    /// under adversarial arrival mixes.
    ///
    /// # Panics
    ///
    /// Fleet construction panics if set to 0 (matching the plan cache's
    /// contract).
    pub probe_memo_capacity: usize,
    /// On a [`FleetEvent::ShardDown`], re-place the failing shard's live
    /// instances onto survivors in priority order (highest first),
    /// charging each move the destination board's full-restage migration
    /// cost; instances no survivor can absorb are shed. `false` sheds
    /// everything — the `fleet_chaos` bench's no-evacuation baseline.
    pub evacuate: bool,
    /// Rejected arrivals retry up to this many times before the
    /// rejection is final (`0` = the pre-retry behaviour: one attempt).
    /// Retries are deterministic: attempt `k` (0-based) re-enters
    /// admission `retry_backoff · 2^k` seconds after its rejection, and
    /// a retry that would land at or past the horizon is finalized as a
    /// rejection immediately.
    pub retry_limit: u32,
    /// Base backoff delay (seconds) of the first retry; doubles per
    /// attempt.
    pub retry_backoff: f64,
    /// Fleet-wide overload guard: after each event, if the worst loaded
    /// shard's mean predicted potential falls below this threshold, its
    /// lowest-priority instance is shed outright — dropping low-priority
    /// work *before* high-priority potential collapses. `0.0` (the
    /// default) disables the guard.
    pub overload_guard: f64,
    /// Route admission probes and health scans through the incremental
    /// shard-state index (see `crate::index`): probes are built once per
    /// *distinct shard state* and broadcast to equal-state shards, and
    /// the rebalancer/overload-guard's worst-shard read is O(log S)
    /// instead of one oracle prediction per shard per event. Decisions
    /// are bit-identical either way (property-tested); `false` keeps the
    /// full O(shards) scan as the identity oracle and A/B baseline.
    pub indexed_placement: bool,
    /// Observability configuration (see [`TelemetrySpec`]). Disabled by
    /// default; enabled or disabled, all placements, timelines, and
    /// [`FleetMetrics`] are bit-identical — telemetry lives strictly off
    /// the decision path (property-tested in `tests/telemetry.rs`).
    pub telemetry: TelemetrySpec,
}

/// Why a fleet configuration was rejected at construction — caught
/// there, with the offending knob named (the `FleetSpecError` pattern),
/// instead of a silent cap changing behavior deep in the executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetConfigError {
    /// [`Parallelism::Async`]'s `max_epoch_lag` exceeds
    /// [`LOOKAHEAD_BOUND`]. The executor buffers at most
    /// `LOOKAHEAD_BOUND + 1` events ahead of the apply cursor, and a
    /// speculative probe only exists within the window that filed it —
    /// so the excess staleness budget could never be exercised. An
    /// unbounded-lag intent is expressed as
    /// `max_epoch_lag: LOOKAHEAD_BOUND` (validation at the clamp is
    /// bit-identical to any larger bound); anything above it is rejected
    /// loudly rather than capped silently.
    MaxEpochLagBeyondLookahead {
        /// The rejected staleness bound.
        max_epoch_lag: u64,
    },
}

impl fmt::Display for FleetConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetConfigError::MaxEpochLagBeyondLookahead { max_epoch_lag } => write!(
                f,
                "max_epoch_lag {max_epoch_lag} exceeds the lookahead clamp \
                 {LOOKAHEAD_BOUND}: the epoch log buffers at most \
                 {LOOKAHEAD_BOUND} + 1 events, so the extra staleness budget \
                 can never be exercised — configure a lag within the clamp"
            ),
        }
    }
}

impl std::error::Error for FleetConfigError {}

impl FleetConfig {
    /// The configured staleness bound of the epoch-log executor: how many
    /// shard epochs a speculative probe may lag the live state before it
    /// is unconditionally rebuilt at apply time (0 under the barrier
    /// modes, where nothing is ever scored ahead of an apply). Set via
    /// [`Parallelism::Async`] on [`FleetConfig::parallelism`].
    pub fn max_epoch_lag(&self) -> u64 {
        self.parallelism.max_epoch_lag()
    }

    /// Checks knob interplay that cannot be expressed in the types.
    /// Fleet construction runs this and panics on `Err`
    /// ([`crate::FleetRuntime::try_new`] surfaces the `Result` instead).
    ///
    /// # Errors
    ///
    /// [`FleetConfigError::MaxEpochLagBeyondLookahead`] when
    /// [`Parallelism::Async`]'s `max_epoch_lag` exceeds
    /// [`LOOKAHEAD_BOUND`].
    pub fn validate(&self) -> Result<(), FleetConfigError> {
        if let Parallelism::Async { max_epoch_lag, .. } = self.parallelism {
            if max_epoch_lag > LOOKAHEAD_BOUND {
                return Err(FleetConfigError::MaxEpochLagBeyondLookahead { max_epoch_lag });
            }
        }
        Ok(())
    }
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            sample_dt: 30.0,
            manager: ManagerConfig {
                mcts_iterations: 400,
                warm_iterations: 150,
                ..Default::default()
            },
            max_per_shard: 5,
            admission_floor: 0.05,
            decision_window: 60.0,
            rebalance_threshold: 0.3,
            rebalance_margin: 0.05,
            objective: GainObjective::default(),
            migration_aware: true,
            fused_scoring: true,
            parallelism: Parallelism::default(),
            probe_memo_capacity: PROBE_MEMO_BOUND,
            evacuate: true,
            retry_limit: 0,
            retry_backoff: 30.0,
            overload_guard: 0.0,
            indexed_placement: true,
            telemetry: TelemetrySpec::default(),
        }
    }
}

/// Where an offered request currently stands.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Disposition {
    /// Finally rejected: admission said no and no retries remain (or the
    /// requester departed while waiting to retry).
    Rejected,
    /// Rejected for now, with a backoff retry scheduled.
    Retrying,
    /// Live on a shard.
    Active { shard: usize, instance: InstanceId },
    /// Admitted earlier, then dropped by a shard failure or the overload
    /// guard.
    Shed,
}

/// One scheduled admission retry, ordered by `(at, request)` — the
/// request id breaks timestamp ties deterministically.
struct RetryEntry {
    at: f64,
    request: RequestId,
    model: ModelId,
    /// 1-based index of this retry attempt.
    attempt: u32,
}

/// Every piece of mutable bookkeeping one [`FleetExecutor::run`] carries
/// between events — split out so the fault-handling paths
/// (`crate::faults`) can update the same tallies the main loop does.
pub(crate) struct RunState {
    pub(crate) requests: HashMap<RequestId, Disposition>,
    pub(crate) placements: Vec<PlacementRecord>,
    /// Wall-clock placement-decision latencies, fed incrementally into a
    /// log-bucketed histogram — O(distinct buckets) memory instead of the
    /// old `Vec<Duration>`'s O(offered load) at the `fleet_massive` tier.
    pub(crate) latencies: Histogram,
    /// Wall-clock shard-failure handling latencies (same representation).
    pub(crate) evac_latencies: Histogram,
    pending_retries: Vec<RetryEntry>,
    pub(crate) admitted: u64,
    pub(crate) rejected: u64,
    pub(crate) migrations: u64,
    pub(crate) retries: u64,
    pub(crate) retry_admitted: u64,
    pub(crate) departed: u64,
    pub(crate) failures_injected: u64,
    pub(crate) throttle_events: u64,
    pub(crate) evacuated: u64,
    pub(crate) shed: u64,
    pub(crate) evacuation_stall_seconds: f64,
    pub(crate) tier_triaged: [u64; 3],
    pub(crate) tier_evacuated: [u64; 3],
    pub(crate) per_shard_admitted: Vec<u64>,
}

impl RunState {
    fn new(shards: usize) -> Self {
        Self {
            requests: HashMap::new(),
            placements: Vec::new(),
            latencies: Histogram::new(),
            evac_latencies: Histogram::new(),
            pending_retries: Vec::new(),
            admitted: 0,
            rejected: 0,
            migrations: 0,
            retries: 0,
            retry_admitted: 0,
            departed: 0,
            failures_injected: 0,
            throttle_events: 0,
            evacuated: 0,
            shed: 0,
            evacuation_stall_seconds: 0.0,
            tier_triaged: [0; 3],
            tier_evacuated: [0; 3],
            per_shard_admitted: vec![0; shards],
        }
    }

    /// Index of the earliest pending retry (ties broken by request id).
    fn next_retry(&self) -> Option<usize> {
        self.pending_retries
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.at.total_cmp(&b.1.at).then(a.1.request.cmp(&b.1.request)))
            .map(|(i, _)| i)
    }
}

/// The engine behind [`crate::FleetRuntime`]: owns the shards, the fused
/// scorer's probe memo, and the event loop that advances all shards
/// between global event barriers (see the module docs for the barrier
/// model and determinism argument).
pub struct FleetExecutor<'p, O: ThroughputOracle> {
    pub(crate) config: FleetConfig,
    /// Per-group oracle, indexed by `Shard::group`.
    pub(crate) group_oracles: Vec<&'p O>,
    /// Per-shard platform names, in shard order (the trace's fleet mix).
    pub(crate) platforms: Vec<String>,
    /// The fused scorer's cross-event memo: per-group oracle answers
    /// keyed by probe fingerprint, LRU-bounded by
    /// [`FleetConfig::probe_memo_capacity`]. A fingerprint fully
    /// determines the question (trial set, survivor placements, weights),
    /// so entries are pure and never stale.
    pub(crate) probe_memo: ProbeMemo,
    /// The incremental shard-state index behind
    /// [`FleetConfig::indexed_placement`] (unused when the flag is off).
    pub(crate) index: PlacementIndex,
    /// The observability collector behind [`FleetConfig::telemetry`] —
    /// strictly off the decision path (inert when disabled).
    pub(crate) telemetry: FleetTelemetry,
    /// Speculative probes of the epoch log's current lookahead window
    /// (empty under the barrier modes — see `crate::speculate`).
    pub(crate) spec: SpeculationCache,
    /// Last observed apply-time staleness per shard (epochs), fed to the
    /// telemetry sampler's `fleet_shard_epoch_lag` gauge — observability
    /// only, never read by a decision.
    pub(crate) epoch_lags: Vec<u64>,
    pub(crate) shards: Vec<Shard<'p, O>>,
}

/// Runs `f` over every shard — exclusively, one worker per shard — and
/// returns the results in canonical shard order regardless of completion
/// order. The free function (rather than a method) lets callers that
/// have already split the executor's fields borrow only the shard slice.
pub(crate) fn for_each_shard<'p, O, R, F>(
    parallelism: Parallelism,
    shards: &mut [Shard<'p, O>],
    f: F,
) -> Vec<R>
where
    O: ThroughputOracle,
    R: Send,
    F: Fn(usize, &mut Shard<'p, O>) -> R + Sync,
{
    let width = parallelism.width().min(shards.len());
    if width <= 1 {
        shards.iter_mut().enumerate().map(|(s, shard)| f(s, shard)).collect()
    } else {
        rayon::iter::par_map_slice_mut(shards, width, &f)
    }
}

impl<'p, O: ThroughputOracle> FleetExecutor<'p, O> {
    /// Builds the executor from a [`FleetSpec`] (see
    /// [`crate::FleetRuntime::new`] for the public entry point).
    ///
    /// # Panics
    ///
    /// Panics when [`FleetConfig::validate`] rejects the configuration
    /// (use [`crate::FleetRuntime::try_new`] for the `Result` surface).
    pub(crate) fn new(spec: &FleetSpec<'p, O>, config: FleetConfig) -> Self {
        if let Err(err) = config.validate() {
            panic!("invalid fleet config: {err}");
        }
        let mut shards = Vec::with_capacity(spec.shard_count());
        let mut group_oracles = Vec::with_capacity(spec.groups().len());
        for (g, group) in spec.groups().iter().enumerate() {
            group_oracles.push(group.oracle);
            let ideals = ideal_rates(group.platform, &ModelId::all());
            let runtime = DynamicRuntime::new(group.platform, config.sample_dt)
                .with_gain_objective(config.objective)
                .with_migration_awareness(config.migration_aware);
            for _ in 0..group.count {
                let i = shards.len();
                shards.push(Shard::new(
                    group.platform,
                    group.oracle,
                    g,
                    ideals.clone(),
                    RankMapMapper::new(
                        RankMapManager::new(group.platform, group.oracle, config.manager),
                        PriorityMode::Dynamic,
                        format!("shard-{i}"),
                    ),
                    runtime.session_with_ideals(ideals.clone()),
                ));
            }
        }
        Self {
            probe_memo: ProbeMemo::new(group_oracles.len(), config.probe_memo_capacity),
            group_oracles,
            platforms: spec.platform_names(),
            index: PlacementIndex::new(shards.len()),
            telemetry: FleetTelemetry::new(config.telemetry, shards.len(), config.sample_dt),
            spec: SpeculationCache::default(),
            epoch_lags: vec![0; shards.len()],
            config,
            shards,
        }
    }

    /// The worst loaded shard `(index, mean predicted potential)` among
    /// shards with something to shed (up, ≥ 2 live instances) — the
    /// rebalancer's and overload guard's shared health question. Indexed
    /// mode reads the health order's front in O(log S); scan mode runs
    /// the original parallel prediction fan-out. Both return the
    /// `min_by(total_cmp)` answer, first-minimal on ties.
    pub(crate) fn worst_loaded(&mut self) -> Option<(usize, f64)> {
        let timer = self.telemetry.stage(stage::REBALANCE_SCAN);
        let worst = if self.config.indexed_placement {
            let refile = self.telemetry.stage(stage::INDEX_REFILE);
            let refiled = self.index.refresh(&mut self.shards);
            self.telemetry.finish(refile);
            self.telemetry.count("fleet_index_refiled_total", refiled as u64);
            self.index.worst()
        } else {
            let means: Vec<Option<f64>> = self.for_each_shard(|_, shard| {
                if !shard.is_down() && shard.live_len() >= 2 {
                    shard.mean_potential()
                } else {
                    None
                }
            });
            means
                .into_iter()
                .enumerate()
                .filter_map(|(s, mean)| mean.map(|m| (s, m)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
        };
        self.telemetry.finish(timer);
        worst
    }

    /// Runs `f` over every shard at the current barrier (see
    /// [`for_each_shard`]).
    pub(crate) fn for_each_shard<R, F>(&mut self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &mut Shard<'p, O>) -> R + Sync,
    {
        for_each_shard(self.config.parallelism, &mut self.shards, f)
    }

    /// The epoch log's speculation fan: scores every arrival of the
    /// freshly pulled lookahead window against the current shard
    /// snapshots in one parallel pass, stamping each probe with its
    /// shard's epoch and placement class key for apply-time validation
    /// (see `crate::speculate`). Under indexed placement only the
    /// current class representatives build probes — the same shards the
    /// apply-time fan would consult; a representative that changes class
    /// before its entry is consumed simply falls back to a fresh build.
    ///
    /// Speculation only touches pure, invalidation-tracked shard memos
    /// (trial workloads, current-state snapshots) — never an epoch — so
    /// it is decision-neutral by construction.
    fn speculate(&mut self, jobs: &[(RequestId, ModelId)]) {
        let max_per_shard = self.config.max_per_shard;
        let rep_mask: Option<Vec<bool>> = if self.config.indexed_placement {
            let refile = self.telemetry.stage(stage::INDEX_REFILE);
            let refiled = self.index.refresh(&mut self.shards);
            self.telemetry.finish(refile);
            self.telemetry.count("fleet_index_refiled_total", refiled as u64);
            Some(self.index.representative_mask(None))
        } else {
            None
        };
        let timer = self.telemetry.stage(stage::SPECULATE);
        // Shard-major fan: each worker stamps its shard's snapshot
        // identity once and builds one probe per buffered arrival.
        let per_shard: Vec<Vec<Option<SpecEntry>>> =
            for_each_shard(self.config.parallelism, &mut self.shards, |s, shard| {
                if rep_mask.as_ref().is_some_and(|mask| !mask[s]) {
                    return jobs.iter().map(|_| None).collect();
                }
                let epoch = shard.epoch();
                let class_key = shard.placement_class_key();
                jobs.iter()
                    .map(|&(_, model)| {
                        Some(SpecEntry {
                            probe: shard.build_probe(s, model, max_per_shard),
                            epoch,
                            class_key: class_key.clone(),
                        })
                    })
                    .collect()
            });
        self.telemetry.finish(timer);
        // Transpose to request-major and file into the cache.
        let mut per_job: Vec<Vec<Option<SpecEntry>>> =
            jobs.iter().map(|_| Vec::with_capacity(per_shard.len())).collect();
        for shard_entries in per_shard {
            for (j, entry) in shard_entries.into_iter().enumerate() {
                per_job[j].push(entry);
            }
        }
        for (&(request, _), entries) in jobs.iter().zip(per_job) {
            self.spec.insert(request, entries);
        }
        self.telemetry.count("fleet_spec_batches_total", 1);
        self.telemetry.count("fleet_spec_probes_total", jobs.len() as u64);
    }

    /// One admission attempt for `request` at time `t` — a fresh arrival
    /// (`attempt == 0`) or a scheduled retry. A rejection with retries
    /// remaining re-enqueues the request with doubled backoff; one whose
    /// retry would land at or past the horizon is finalized immediately
    /// (the retry budget is bounded *and* the run always terminates).
    #[allow(clippy::too_many_arguments)]
    fn admission_attempt(
        &mut self,
        t: f64,
        request: RequestId,
        model: ModelId,
        attempt: u32,
        horizon: f64,
        lanes: &mut LaneBatch,
        state: &mut RunState,
    ) {
        let window = self.config.decision_window;
        let started = Instant::now();
        // The epoch log may have scored this arrival ahead of the apply
        // cursor; the entries are consumed exactly once (retries re-probe
        // fresh) and validated per shard inside the scoring fan.
        let speculated = self.spec.take(&request);
        let decision = self.place(model, speculated);
        state.latencies.record(started.elapsed().as_secs_f64());
        match decision {
            Some((s, delta)) => {
                let instance = if lanes.enabled() {
                    // Admission is a lane fence, so the batch is drained:
                    // the winner's apply opens a fresh batch at position
                    // 0, no earlier commit can touch shard `s` first, and
                    // the instance id pinned here is exactly the one the
                    // commit will assign (debug-asserted in the walk).
                    debug_assert!(
                        lanes.is_empty(),
                        "admission pins identities against a drained lane batch"
                    );
                    let pinned = self.shards[s].next_instance_id();
                    lanes.push_admit(t, request, model, s);
                    pinned
                } else {
                    let timer = self.telemetry.stage(stage::APPLY);
                    let assigned =
                        self.shards[s].apply(t, &[DynamicEvent::arrive(t, model)], window);
                    self.telemetry.finish(timer);
                    assigned[0]
                };
                state
                    .requests
                    .insert(request, Disposition::Active { shard: s, instance });
                state.admitted += 1;
                if attempt > 0 {
                    state.retry_admitted += 1;
                }
                state.per_shard_admitted[s] += 1;
                self.telemetry.count("fleet_admitted_total", 1);
                if self.telemetry.enabled() {
                    self.telemetry.record(
                        t,
                        "admit",
                        None,
                        vec![
                            ("request", request.ordinal().to_string()),
                            ("model", format!("{model:?}")),
                            ("shard", s.to_string()),
                            ("delta", format!("{delta:.6}")),
                        ],
                    );
                }
                state.placements.push(PlacementRecord {
                    request,
                    at: t,
                    outcome: PlacementOutcome::Admitted { shard: s },
                    predicted_delta: delta,
                });
            }
            None => {
                let retry_at = t + self.config.retry_backoff * f64::powi(2.0, attempt as i32);
                if attempt < self.config.retry_limit && retry_at < horizon {
                    state.pending_retries.push(RetryEntry {
                        at: retry_at,
                        request,
                        model,
                        attempt: attempt + 1,
                    });
                    state.requests.insert(request, Disposition::Retrying);
                    state.retries += 1;
                    self.telemetry.count("fleet_deferred_total", 1);
                    if self.telemetry.enabled() {
                        self.telemetry.record(
                            t,
                            "defer",
                            None,
                            vec![
                                ("request", request.ordinal().to_string()),
                                ("retry_at", format!("{retry_at:.3}")),
                            ],
                        );
                    }
                    state.placements.push(PlacementRecord {
                        request,
                        at: t,
                        outcome: PlacementOutcome::Deferred,
                        predicted_delta: 0.0,
                    });
                } else {
                    state.requests.insert(request, Disposition::Rejected);
                    state.rejected += 1;
                    self.telemetry.count("fleet_rejected_total", 1);
                    if self.telemetry.enabled() {
                        self.telemetry.record(
                            t,
                            "reject",
                            None,
                            vec![("request", request.ordinal().to_string())],
                        );
                    }
                    state.placements.push(PlacementRecord {
                        request,
                        at: t,
                        outcome: PlacementOutcome::Rejected,
                        predicted_delta: 0.0,
                    });
                }
                if lanes.enabled() {
                    // Nothing to retire on a lane: this position's
                    // deferred checks run now (the batch is drained —
                    // admission is a fence — so the checkpoint is inline).
                    self.lane_checkpoint(t, lanes, state);
                }
            }
        }
    }

    /// Handles one stream event at its timestamp `t`.
    ///
    /// With apply lanes on, this is where the commutativity analysis
    /// runs: single-shard events (a pinned admission, a departure, a
    /// derate) enqueue a lane op instead of applying eagerly — at most
    /// one pending op per shard, a second drains the batch first — while
    /// cross-shard events (admission fan-outs, `SetPriorities`,
    /// `ShardDown`/`ShardUp`) fence: drain, handle inline, resequence.
    /// Every log position either retires one lane op (whose commit runs
    /// the position's deferred checks) or runs its checks inline/via a
    /// checkpoint — never both, never neither.
    fn handle_event(
        &mut self,
        event: &FleetEvent,
        horizon: f64,
        lanes: &mut LaneBatch,
        state: &mut RunState,
    ) {
        let t = event.at();
        let window = self.config.decision_window;
        match event {
            FleetEvent::Arrive { request, model, .. } => {
                if lanes.enabled() {
                    // Admission is a fence: its probe fan must score the
                    // same committed shard state the sequential cursor
                    // would see, and its winner's identity pin needs an
                    // empty batch.
                    self.flush_lanes(lanes, state);
                }
                self.admission_attempt(t, *request, *model, 0, horizon, lanes, state);
            }
            FleetEvent::Depart { request, .. } => {
                if lanes.enabled() {
                    if let Some(Disposition::Active { shard, .. }) =
                        state.requests.get(request).copied()
                    {
                        // One pending apply per shard lane: a second op
                        // on a busy shard drains the batch first (the
                        // re-read below then sees the committed state).
                        if lanes.busy(shard) {
                            self.flush_lanes(lanes, state);
                        }
                    }
                    match state.requests.get(request).copied() {
                        Some(Disposition::Active { shard, instance }) => {
                            // Single-shard, commutative with other lanes:
                            // bookkeeping and the apply both retire at
                            // this position's commit, which re-reads the
                            // disposition in case an intervening check
                            // migrated or shed the instance.
                            lanes.push_depart(t, *request, shard, instance);
                        }
                        Some(Disposition::Retrying) => {
                            // No shard state changes (checks never read
                            // `Retrying` entries), so the cancellation is
                            // safe inline; the position's checks ride a
                            // checkpoint.
                            state.requests.insert(*request, Disposition::Rejected);
                            state.rejected += 1;
                            self.lane_checkpoint(t, lanes, state);
                        }
                        _ => self.lane_checkpoint(t, lanes, state),
                    }
                    return;
                }
                match state.requests.get(request).copied() {
                    Some(Disposition::Active { shard, instance }) => {
                        state.requests.remove(request);
                        state.departed += 1;
                        self.telemetry.count("fleet_departed_total", 1);
                        self.shards[shard].apply(
                            t,
                            &[DynamicEvent::depart(t, instance)],
                            window,
                        );
                    }
                    Some(Disposition::Retrying) => {
                        // The requester gave up while waiting on a
                        // backoff retry: the pending attempt is canceled
                        // (its queue entry is skipped when it fires) and
                        // the rejection becomes final.
                        state.requests.insert(*request, Disposition::Rejected);
                        state.rejected += 1;
                    }
                    // Rejected, shed, or unknown: nothing serving to stop.
                    _ => {}
                }
            }
            FleetEvent::SetPriorities { mode, .. } => {
                if lanes.enabled() {
                    // A fleet-wide broadcast is the canonical lane fence.
                    self.flush_lanes(lanes, state);
                }
                // A priority rotation re-maps *every* shard — the
                // widest barrier of the event loop, fanned across the
                // worker pool. It also invalidates every speculative
                // probe: the priority mode is a `build_probe` input the
                // placement class key deliberately omits (it never
                // differs between shards), so apply-time validation
                // cannot see a mode change — the flush makes sure no
                // pre-rotation probe survives to be validated at all.
                let dropped = self.spec.flush();
                self.telemetry.count("fleet_spec_probes_wasted_total", dropped);
                let timer = self.telemetry.stage(stage::REMAP);
                let ev = [DynamicEvent::SetPriorities { at: t, mode: mode.clone() }];
                for_each_shard(self.config.parallelism, &mut self.shards, |_, shard| {
                    shard.apply(t, &ev, window);
                });
                self.telemetry.finish(timer);
                self.telemetry.record(t, "set_priorities", None, Vec::new());
                if lanes.enabled() {
                    // The batch is empty post-fence, so this runs the
                    // position's checks inline.
                    self.lane_checkpoint(t, lanes, state);
                }
            }
            FleetEvent::ShardDown { shard, .. } => {
                if lanes.enabled() {
                    // Evacuation re-places the victim's instances across
                    // the *whole* fleet — a cross-shard fence.
                    self.flush_lanes(lanes, state);
                }
                if !self.shards[*shard].is_down() {
                    state.failures_injected += 1;
                    let cause = if self.telemetry.enabled() {
                        self.telemetry.record(
                            t,
                            "shard_down",
                            None,
                            vec![("shard", shard.to_string())],
                        )
                    } else {
                        None
                    };
                    let timer = self.telemetry.stage(stage::EVACUATION);
                    let started = Instant::now();
                    self.fail_shard(t, *shard, state, cause);
                    state.evac_latencies.record(started.elapsed().as_secs_f64());
                    self.telemetry.finish(timer);
                }
                if lanes.enabled() {
                    self.lane_checkpoint(t, lanes, state);
                }
            }
            FleetEvent::ShardUp { shard, .. } => {
                if lanes.enabled() {
                    // Revival bumps the shard's epoch and re-opens it to
                    // placement — resequence so later admissions see it.
                    self.flush_lanes(lanes, state);
                }
                if self.shards[*shard].is_down() {
                    self.shards[*shard].revive(t, window);
                    if self.telemetry.enabled() {
                        self.telemetry.record(
                            t,
                            "shard_up",
                            None,
                            vec![("shard", shard.to_string())],
                        );
                    }
                }
                if lanes.enabled() {
                    self.lane_checkpoint(t, lanes, state);
                }
            }
            FleetEvent::ShardThrottle { shard, factor, .. } => {
                if lanes.enabled() {
                    // One pending apply per shard lane (see `Depart`).
                    if lanes.busy(*shard) {
                        self.flush_lanes(lanes, state);
                    }
                    let target = &self.shards[*shard];
                    if !target.is_down() && target.throttle() != *factor {
                        // A derate is single-shard: the speed change and
                        // its segment close commute with other lanes. The
                        // flight record and counter stay at the cursor —
                        // telemetry order is not part of the bit-identity
                        // contract, and recording here keeps the record
                        // aligned with the log position.
                        lanes.push_throttle(t, *shard, *factor);
                        state.throttle_events += 1;
                        if self.telemetry.enabled() {
                            self.telemetry.record(
                                t,
                                "throttle",
                                None,
                                vec![
                                    ("shard", shard.to_string()),
                                    ("factor", format!("{factor:.3}")),
                                ],
                            );
                        }
                    } else {
                        self.lane_checkpoint(t, lanes, state);
                    }
                    return;
                }
                let target = &mut self.shards[*shard];
                // Throttles on a down shard are moot — repair restores
                // nominal speed — and re-asserting the current factor is
                // an idempotent no-op.
                if !target.is_down() && target.throttle() != *factor {
                    target.set_throttle(t, *factor, window);
                    state.throttle_events += 1;
                    if self.telemetry.enabled() {
                        self.telemetry.record(
                            t,
                            "throttle",
                            None,
                            vec![
                                ("shard", shard.to_string()),
                                ("factor", format!("{factor:.3}")),
                            ],
                        );
                    }
                }
            }
        }
    }

    /// The per-position check barrier: rebalance, then the overload
    /// guard on the post-rebalance fleet, then the sampling hook (which
    /// only reads memoized pure shard state, so enabled-vs-disabled
    /// telemetry runs stay bit-identical). The serial cursor runs this
    /// after every event; the lane scheduler runs it after every
    /// position of a batch walk (see [`FleetExecutor::flush_lanes`]).
    pub(crate) fn after_event(&mut self, t: f64, state: &mut RunState) {
        if let Some((src, dst)) = self.maybe_rebalance(t, &mut state.requests) {
            state.migrations += 1;
            state.per_shard_admitted[dst] += 1;
            self.telemetry.count("fleet_migrations_total", 1);
            if self.telemetry.enabled() {
                self.telemetry.record(
                    t,
                    "rebalance",
                    None,
                    vec![("from", src.to_string()), ("to", dst.to_string())],
                );
            }
        }
        self.overload_guard(t, state);
        self.telemetry.maybe_sample(
            t,
            &mut self.shards,
            &state.per_shard_admitted,
            &self.epoch_lags,
        );
    }

    /// Accounts for a log position that owns no shard work under the
    /// lane scheduler: against an empty batch its checks run inline
    /// (nothing to order after); otherwise a checkpoint op holds its
    /// place so the checks run at the right position of the batch walk.
    fn lane_checkpoint(&mut self, t: f64, lanes: &mut LaneBatch, state: &mut RunState) {
        if lanes.is_empty() {
            self.after_event(t, state);
        } else {
            lanes.push_checkpoint(t);
        }
    }

    /// Drains the lane batch at a fence: out-of-order *prepare*,
    /// in-order *commit* (see the `crate::lanes` module docs for the
    /// full protocol and determinism argument).
    ///
    /// Every pending op's apply work runs concurrently as a pure
    /// epoch-stamped preparation, one worker per occupied lane; then a
    /// serial walk retires the ops in log order, running each position's
    /// deferred checks right after it commits. A stale stamp at commit
    /// (an earlier position's check mutated the shard) discards the
    /// preparation and applies the event directly — correctness never
    /// depends on the speculation winning.
    fn flush_lanes(&mut self, lanes: &mut LaneBatch, state: &mut RunState) {
        if lanes.is_empty() {
            return;
        }
        let ops = lanes.take();
        let window = self.config.decision_window;
        let lane_ops = ops.iter().filter(|op| op.shard().is_some()).count();
        self.telemetry.count("fleet_lane_batches_total", 1);
        self.telemetry.count("fleet_lane_ops_total", lane_ops as u64);
        self.telemetry.gauge("fleet_lane_occupancy", lane_ops as f64);
        // Out-of-order prepare: one worker per occupied lane, each
        // running its op's apply as a pure computation on its own shard.
        let mut op_of_shard: Vec<Option<usize>> = vec![None; self.shards.len()];
        for (i, op) in ops.iter().enumerate() {
            if let Some(s) = op.shard() {
                debug_assert!(op_of_shard[s].is_none(), "one pending op per shard lane");
                op_of_shard[s] = Some(i);
            }
        }
        let timer = self.telemetry.stage(stage::APPLY_PREPARE);
        let mut pairs: Vec<(&mut Shard<'p, O>, usize)> = self
            .shards
            .iter_mut()
            .enumerate()
            .filter_map(|(s, shard)| op_of_shard[s].map(|i| (shard, i)))
            .collect();
        let ops_ref = &ops;
        let prepare = move |_k: usize, pair: &mut (&mut Shard<'p, O>, usize)| {
            let (shard, i) = pair;
            let op = &ops_ref[*i];
            let prepared = match &op.kind {
                LaneKind::Admit { model, .. } => {
                    shard.prepare(op.t, &[DynamicEvent::arrive(op.t, *model)], window, None)
                }
                LaneKind::Depart { instance, .. } => {
                    shard.prepare(op.t, &[DynamicEvent::depart(op.t, *instance)], window, None)
                }
                LaneKind::Throttle { factor, .. } => shard.prepare(op.t, &[], window, Some(*factor)),
                LaneKind::Checkpoint => unreachable!("checkpoints own no shard lane"),
            };
            (*i, prepared)
        };
        let width = self.config.parallelism.width().min(pairs.len());
        let prepared_list: Vec<(usize, ShardPrepared)> = if width <= 1 {
            pairs.iter_mut().enumerate().map(|(k, pair)| prepare(k, pair)).collect()
        } else {
            rayon::iter::par_map_slice_mut(&mut pairs, width, &prepare)
        };
        drop(pairs);
        self.telemetry.finish(timer);
        let mut prepared_of: Vec<Option<ShardPrepared>> = ops.iter().map(|_| None).collect();
        for (i, p) in prepared_list {
            prepared_of[i] = Some(p);
        }
        // In-order commit: retire the ops in log order, running each
        // position's deferred checks right after it. A check that fires
        // bumps its victims' epochs, so any later preparation on those
        // shards fails its stamp check below and re-applies directly.
        let mut discards = 0u64;
        for (i, op) in ops.iter().enumerate() {
            let t = op.t;
            match &op.kind {
                LaneKind::Checkpoint => {}
                LaneKind::Admit { request, model, shard } => {
                    let p = prepared_of[i].take().expect("every shard op prepared");
                    let timer = self.telemetry.stage(stage::APPLY_COMMIT);
                    let assigned = if p.epoch_stamp() == self.shards[*shard].epoch() {
                        self.shards[*shard].commit(p)
                    } else {
                        // Defensive only: admission fences, so its op is
                        // always position 0 — nothing can intervene.
                        discards += 1;
                        self.shards[*shard].discard(p);
                        self.shards[*shard].apply(t, &[DynamicEvent::arrive(t, *model)], window)
                    };
                    self.telemetry.finish(timer);
                    let id = assigned[0];
                    if let Some(Disposition::Active { instance, .. }) =
                        state.requests.get_mut(request)
                    {
                        debug_assert_eq!(
                            *instance, id,
                            "the instance identity pinned at admission must hold"
                        );
                        *instance = id;
                    }
                }
                LaneKind::Depart { request, shard, instance } => {
                    let p = prepared_of[i].take().expect("every shard op prepared");
                    match state.requests.get(request).copied() {
                        Some(Disposition::Active { shard: s2, instance: i2 }) => {
                            state.requests.remove(request);
                            state.departed += 1;
                            self.telemetry.count("fleet_departed_total", 1);
                            let timer = self.telemetry.stage(stage::APPLY_COMMIT);
                            if s2 == *shard
                                && i2 == *instance
                                && p.epoch_stamp() == self.shards[s2].epoch()
                            {
                                self.shards[s2].commit(p);
                            } else {
                                // An earlier position's check migrated
                                // the instance (new shard/identity) or
                                // touched the shard: the preparation is
                                // stale — depart the live placement.
                                discards += 1;
                                self.shards[*shard].discard(p);
                                self.shards[s2].apply(
                                    t,
                                    &[DynamicEvent::depart(t, i2)],
                                    window,
                                );
                            }
                            self.telemetry.finish(timer);
                        }
                        Some(Disposition::Retrying) => {
                            // Defensive (mirrors the cursor path): no
                            // check turns `Active` into `Retrying`.
                            state.requests.insert(*request, Disposition::Rejected);
                            state.rejected += 1;
                            discards += 1;
                            self.shards[*shard].discard(p);
                        }
                        // Shed in between: nothing serving to stop.
                        _ => {
                            discards += 1;
                            self.shards[*shard].discard(p);
                        }
                    }
                }
                LaneKind::Throttle { shard, factor } => {
                    let p = prepared_of[i].take().expect("every shard op prepared");
                    let timer = self.telemetry.stage(stage::APPLY_COMMIT);
                    if p.epoch_stamp() == self.shards[*shard].epoch() {
                        self.shards[*shard].commit(p);
                    } else {
                        discards += 1;
                        self.shards[*shard].discard(p);
                        self.shards[*shard].set_throttle(t, *factor, window);
                    }
                    self.telemetry.finish(timer);
                }
            }
            // The position's deferred checks, exactly where the serial
            // cursor would run them.
            self.after_event(t, state);
        }
        self.telemetry.count("fleet_lane_discards_total", discards);
    }

    /// Runs a sorted fleet event stream to `horizon`, consuming the
    /// executor.
    ///
    /// # Panics
    ///
    /// Panics if `events` is not sorted by time, reaches outside
    /// `[0, horizon)`, or names a shard index beyond the fleet.
    pub(crate) fn run(self, events: &[FleetEvent], horizon: f64) -> FleetOutcome {
        self.run_stream(events.iter().cloned(), horizon)
    }

    /// [`FleetExecutor::run`] over a pull-based event source — the
    /// million-instance entry point: paired with
    /// [`crate::load::LoadStream`], the full event vector is never
    /// materialized. Validation (sortedness, horizon bounds, shard
    /// indices) happens incrementally as events are pulled, with the same
    /// panic messages as the slice path.
    pub(crate) fn run_stream<I>(mut self, events: I, horizon: f64) -> FleetOutcome
    where
        I: IntoIterator<Item = FleetEvent>,
    {
        let mut events = events.into_iter();
        // The epoch log's lookahead window: barrier modes keep it at one
        // event (pull one, apply one — the classic loop); `Async` pulls
        // up to `max_epoch_lag + 1` events and speculatively scores the
        // batch's arrivals in one parallel fan before any of them apply.
        let window_len = self.config.parallelism.lookahead() as usize + 1;
        let mut buffer: VecDeque<FleetEvent> = VecDeque::with_capacity(window_len);
        let mut last_at = f64::NEG_INFINITY;
        let mut state = RunState::new(self.shards.len());
        let mut lanes = LaneBatch::new(self.config.parallelism.lanes(), self.shards.len());
        let mut offered = 0u64;
        // Stream events and scheduled retries merge into one ordered
        // walk; at equal timestamps the retry goes first (it was offered
        // strictly earlier). Every action is followed by the rebalance
        // and overload-guard barriers, exactly like a stream event.
        loop {
            if buffer.is_empty() {
                // The window refill is a lane fence: pending applies and
                // their deferred checks must retire before the next
                // speculation fan stamps shard epochs.
                self.flush_lanes(&mut lanes, &mut state);
                // Refill the window. Validation (sortedness, horizon
                // bounds, shard indices) happens as events are pulled,
                // with the same panic messages as before the epoch log.
                while buffer.len() < window_len {
                    let Some(event) = events.next() else { break };
                    assert!(event.at() >= last_at, "fleet events must be sorted by time");
                    assert!(
                        (0.0..horizon).contains(&event.at()),
                        "fleet events must lie within [0, horizon)"
                    );
                    if let FleetEvent::ShardDown { shard, .. }
                    | FleetEvent::ShardUp { shard, .. }
                    | FleetEvent::ShardThrottle { shard, .. } = &event
                    {
                        assert!(
                            *shard < self.shards.len(),
                            "fault events must name shards within the fleet"
                        );
                    }
                    last_at = event.at();
                    buffer.push_back(event);
                }
                if self.config.parallelism.is_async() && !buffer.is_empty() {
                    let jobs: Vec<(RequestId, ModelId)> = buffer
                        .iter()
                        .filter_map(|event| match event {
                            FleetEvent::Arrive { request, model, .. } => {
                                Some((*request, *model))
                            }
                            _ => None,
                        })
                        .collect();
                    if !jobs.is_empty() {
                        self.speculate(&jobs);
                    }
                }
            }
            let retry = state.next_retry();
            let take_retry = match (retry, buffer.front()) {
                (Some(i), Some(e)) => state.pending_retries[i].at <= e.at(),
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let t;
            if take_retry {
                let entry = state.pending_retries.swap_remove(retry.expect("checked"));
                // A Depart while waiting canceled this attempt.
                if !matches!(state.requests.get(&entry.request), Some(Disposition::Retrying))
                {
                    continue;
                }
                t = entry.at;
                // A retry is an admission — a lane fence like any other
                // arrival (its probe fan must see committed state).
                self.flush_lanes(&mut lanes, &mut state);
                self.admission_attempt(
                    entry.at,
                    entry.request,
                    entry.model,
                    entry.attempt,
                    horizon,
                    &mut lanes,
                    &mut state,
                );
            } else {
                let event = buffer.pop_front().expect("checked non-empty above");
                if matches!(event, FleetEvent::Arrive { .. }) {
                    offered += 1;
                }
                t = event.at();
                self.handle_event(&event, horizon, &mut lanes, &mut state);
            }
            // Departures free capacity and arrivals shift contention —
            // both are rebalance opportunities; overload sheds run after,
            // on the post-rebalance fleet, and the sampling hook runs
            // last. With apply lanes on, each log position's checks ride
            // the lane walk instead (see `flush_lanes`): they run right
            // after that position's op retires, in log order — never here.
            if !lanes.enabled() {
                self.after_event(t, &mut state);
            }
        }
        // Retire whatever the final window left pending before the
        // closing barrier freezes shard state.
        self.flush_lanes(&mut lanes, &mut state);
        // The closing barrier: every shard's last open segment is closed
        // (and its timeline samples emitted) concurrently, then collected
        // in shard order.
        let live_at_end = state
            .requests
            .values()
            .filter(|d| matches!(d, Disposition::Active { .. }))
            .count() as u64;
        let Self { config, platforms, mut shards, probe_memo, telemetry, .. } = self;
        for_each_shard(config.parallelism, &mut shards, |_, shard| {
            shard.session.finish(horizon);
        });
        // Snapshot before the shards are consumed into timelines: the
        // overlay pulls absolute totals from the probe memo and every
        // shard's plan cache, and folds in the wall-latency histograms
        // the run measured unconditionally.
        let telemetry_snapshot = telemetry.snapshot(
            &probe_memo,
            &shards,
            Some(&state.latencies),
            Some(&state.evac_latencies),
        );
        let timelines: Vec<Vec<TimelinePoint>> =
            shards.into_iter().map(|shard| shard.session.into_timeline()).collect();
        let per_shard_potential: Vec<f64> =
            timelines.iter().map(|tl| timeline_average_potential(tl)).collect();
        let aggregate_potential_seconds: f64 = timelines
            .iter()
            .flat_map(|tl| tl.iter())
            .map(|pt| pt.potentials.iter().sum::<f64>() * pt.span)
            .sum();
        debug_assert_eq!(offered, state.admitted + state.rejected, "every offer resolves");
        FleetOutcome {
            metrics: FleetMetrics {
                shards: per_shard_potential.len(),
                offered,
                admitted: state.admitted,
                rejected: state.rejected,
                migrations: state.migrations,
                per_shard_potential,
                per_shard_admitted: state.per_shard_admitted,
                per_shard_platform: platforms,
                aggregate_potential_seconds,
                failures_injected: state.failures_injected,
                throttle_events: state.throttle_events,
                evacuated: state.evacuated,
                shed: state.shed,
                retries: state.retries,
                retry_admitted: state.retry_admitted,
                evacuation_stall_seconds: state.evacuation_stall_seconds,
                departed: state.departed,
                live_at_end,
                tier_triaged: state.tier_triaged,
                tier_evacuated: state.tier_evacuated,
            },
            placements: state.placements,
            timelines,
            placement_latency: LatencyStats::from_histogram(&state.latencies),
            evacuation_latency: LatencyStats::from_histogram(&state.evac_latencies),
            telemetry: telemetry_snapshot,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankmap_core::oracle::AnalyticalOracle;

    #[test]
    fn executor_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<FleetExecutor<'static, AnalyticalOracle<'static>>>();
    }

    fn asynch(workers: usize, max_epoch_lag: u64, apply_lanes: bool) -> Parallelism {
        Parallelism::Async { workers, max_epoch_lag, apply_lanes }
    }

    #[test]
    fn parallelism_width_floors_at_one() {
        assert_eq!(Parallelism::Sequential.width(), 1);
        assert_eq!(Parallelism::Threads(0).width(), 1);
        assert_eq!(Parallelism::Threads(6).width(), 6);
        assert_eq!(asynch(0, 4, false).width(), 1);
        assert_eq!(asynch(3, 4, true).width(), 3);
    }

    #[test]
    fn lookahead_is_async_only_and_bounded() {
        assert_eq!(Parallelism::Sequential.lookahead(), 0);
        assert_eq!(Parallelism::Threads(8).lookahead(), 0);
        assert_eq!(asynch(2, 5, false).lookahead(), 5);
        // The ceiling itself is configurable (and the largest bound that
        // passes validation — see below); the window honors it exactly.
        let at_bound = asynch(2, LOOKAHEAD_BOUND, false);
        assert_eq!(at_bound.lookahead(), LOOKAHEAD_BOUND);
        assert_eq!(at_bound.max_epoch_lag(), LOOKAHEAD_BOUND);
    }

    #[test]
    fn lanes_require_async_opt_in() {
        assert!(!Parallelism::Sequential.lanes());
        assert!(!Parallelism::Threads(4).lanes());
        assert!(!asynch(4, 3, false).lanes());
        assert!(asynch(4, 3, true).lanes());
    }

    #[test]
    fn config_exposes_the_lag_bound() {
        assert_eq!(FleetConfig::default().max_epoch_lag(), 0);
        let config = FleetConfig {
            parallelism: asynch(4, 7, false),
            ..Default::default()
        };
        assert_eq!(config.max_epoch_lag(), 7);
    }

    #[test]
    fn validate_pins_the_lag_ceiling_and_its_message() {
        // The largest admissible bound passes…
        let ok = FleetConfig {
            parallelism: asynch(4, LOOKAHEAD_BOUND, true),
            ..Default::default()
        };
        assert!(ok.validate().is_ok());
        // …one past it is rejected with a named, actionable error: a lag
        // bound the bounded lookahead window can never realize would
        // silently behave like `LOOKAHEAD_BOUND`, so it fails loudly.
        let config = FleetConfig {
            parallelism: asynch(4, LOOKAHEAD_BOUND + 1, false),
            ..Default::default()
        };
        let err = config.validate().unwrap_err();
        assert_eq!(
            err,
            FleetConfigError::MaxEpochLagBeyondLookahead { max_epoch_lag: LOOKAHEAD_BOUND + 1 }
        );
        let msg = err.to_string();
        assert!(
            msg.contains("257") && msg.contains("256"),
            "the error must name both the offending lag and the ceiling: {msg}"
        );
        // Barrier modes carry no lag bound; nothing to reject.
        assert!(FleetConfig::default().validate().is_ok());
    }
}
