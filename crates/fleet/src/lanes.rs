//! Per-shard apply lanes for the epoch-log executor: the batch data
//! structure behind `Parallelism::Async { apply_lanes: true, .. }`.
//!
//! The commutativity rule is ownership: an apply that touches exactly
//! one shard's runtime session — a pinned admission, a departure of an
//! active instance, a derate — commutes with any apply that touches a
//! *different* shard, because shard sessions share no mutable state and
//! every cross-shard decision input (probe fans, rebalance scans, the
//! overload guard) is re-read at a fence. Such events enqueue a
//! [`LaneOp`] on their shard's lane instead of applying at the cursor.
//! Everything else is a **fence** that drains the batch and resequences:
//!
//! * admissions (their probe fan must score committed shard state, and
//!   the winner's instance-identity pin needs an empty batch),
//! * `SetPriorities` broadcasts, `ShardDown` evacuations, `ShardUp`
//!   revivals (cross-shard by construction),
//! * a second op landing on a busy shard (one pending op per lane),
//! * the lookahead-window refill (speculation stamps shard epochs),
//! * and the end of the stream.
//!
//! Draining is out-of-order *prepare*, in-order *commit*: every pending
//! op's expensive apply work runs concurrently as a pure
//! [`rankmap_core::runtime::RuntimeSession::prepare_apply`] computation
//! stamped with the shard's epoch, then a serial walk retires the ops in
//! strict log order, running each position's deferred checks (rebalance
//! → overload guard → telemetry sample) right after its op commits. If a
//! check mutates a shard that still has a later prepared op, the epoch
//! stamp no longer matches at that op's commit — the preparation is
//! discarded and the event applies directly at its position instead.
//! Parallelism therefore changes *when work is computed*, never *what is
//! decided*: the committed state sequence is bit-identical to the serial
//! cursor's (`apply_lanes: false`), which stays available as the oracle.

use rankmap_core::runtime::InstanceId;
use rankmap_models::ModelId;

use crate::load::RequestId;

/// The pending out-of-order applies of the current lane batch: at most
/// one op per shard (`busy` enforces it), retired together at the next
/// fence by `FleetExecutor::flush_lanes`.
///
/// A disabled batch (barrier modes, `apply_lanes: false`) stays
/// permanently empty; callers branch on [`LaneBatch::enabled`] and fall
/// through to the serial cursor path.
pub(crate) struct LaneBatch {
    enabled: bool,
    ops: Vec<LaneOp>,
    busy: Vec<bool>,
}

impl LaneBatch {
    pub(crate) fn new(enabled: bool, shards: usize) -> Self {
        Self { enabled, ops: Vec::new(), busy: vec![false; shards] }
    }

    /// Whether the executor runs the lane scheduler at all.
    pub(crate) fn enabled(&self) -> bool {
        self.enabled
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Whether `shard` already owns a pending op (a second one must
    /// fence first — lane order within a shard is log order).
    pub(crate) fn busy(&self, shard: usize) -> bool {
        self.busy[shard]
    }

    /// Enqueues a pinned admission (the winning shard `s` was chosen at
    /// the cursor; the instance identity was pinned via
    /// `Shard::next_instance_id` against a drained batch).
    pub(crate) fn push_admit(&mut self, t: f64, request: RequestId, model: ModelId, shard: usize) {
        self.push(LaneOp { t, kind: LaneKind::Admit { request, model, shard } });
    }

    /// Enqueues the departure of an instance observed `Active` on
    /// `shard` at the cursor (commit re-reads the disposition).
    pub(crate) fn push_depart(
        &mut self,
        t: f64,
        request: RequestId,
        shard: usize,
        instance: InstanceId,
    ) {
        self.push(LaneOp { t, kind: LaneKind::Depart { request, shard, instance } });
    }

    /// Enqueues a derate (`set_throttle`) for `shard`.
    pub(crate) fn push_throttle(&mut self, t: f64, shard: usize, factor: f64) {
        self.push(LaneOp { t, kind: LaneKind::Throttle { shard, factor } });
    }

    /// Enqueues a position that owns no shard work but whose deferred
    /// checks (rebalance / overload guard / sample) must still run at
    /// its place in the log walk. Only meaningful in a non-empty batch —
    /// `FleetExecutor::lane_checkpoint` runs the checks inline otherwise.
    pub(crate) fn push_checkpoint(&mut self, t: f64) {
        debug_assert!(!self.ops.is_empty(), "an empty batch runs its checks inline");
        self.ops.push(LaneOp { t, kind: LaneKind::Checkpoint });
    }

    fn push(&mut self, op: LaneOp) {
        debug_assert!(self.enabled, "lane ops require the lane scheduler");
        if let Some(s) = op.shard() {
            debug_assert!(!self.busy[s], "one pending op per shard lane");
            self.busy[s] = true;
        }
        self.ops.push(op);
    }

    /// Drains the batch for a flush, clearing the busy flags.
    pub(crate) fn take(&mut self) -> Vec<LaneOp> {
        self.busy.fill(false);
        std::mem::take(&mut self.ops)
    }
}

/// One log position captured in the batch, in log order.
pub(crate) struct LaneOp {
    /// The event's timestamp (deferred checks run at this time).
    pub(crate) t: f64,
    pub(crate) kind: LaneKind,
}

impl LaneOp {
    /// The shard whose lane this op occupies (`None` for checkpoints).
    pub(crate) fn shard(&self) -> Option<usize> {
        match &self.kind {
            LaneKind::Admit { shard, .. }
            | LaneKind::Depart { shard, .. }
            | LaneKind::Throttle { shard, .. } => Some(*shard),
            LaneKind::Checkpoint => None,
        }
    }
}

pub(crate) enum LaneKind {
    /// An admission whose winner was decided (and instance identity
    /// pinned) at the cursor; only the apply is deferred.
    Admit { request: RequestId, model: ModelId, shard: usize },
    /// A departure observed `Active { shard, instance }` at the cursor;
    /// commit re-reads the disposition in case a deferred check migrated
    /// or shed the instance in between.
    Depart { request: RequestId, shard: usize, instance: InstanceId },
    /// A derate decided effective at the cursor (`!down`, factor
    /// changed); same-shard ordering is guaranteed by the busy fence.
    Throttle { shard: usize, factor: f64 },
    /// No shard work — the position only carries its deferred checks.
    Checkpoint,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_tracks_busy_lanes_and_drains_clean() {
        let mut batch = LaneBatch::new(true, 3);
        assert!(batch.enabled());
        assert!(batch.is_empty());
        batch.push_admit(1.0, RequestId::new(1), ModelId::AlexNet, 0);
        batch.push_throttle(2.0, 2, 0.5);
        batch.push_checkpoint(3.0);
        assert!(batch.busy(0) && !batch.busy(1) && batch.busy(2));
        assert!(!batch.is_empty());
        let ops = batch.take();
        assert_eq!(ops.len(), 3);
        assert_eq!(ops[0].shard(), Some(0));
        assert_eq!(ops[1].shard(), Some(2));
        assert_eq!(ops[2].shard(), None);
        assert!(batch.is_empty());
        assert!(!batch.busy(0) && !batch.busy(2), "take clears the lanes");
    }

    #[test]
    fn disabled_batch_stays_inert() {
        let batch = LaneBatch::new(false, 4);
        assert!(!batch.enabled());
        assert!(batch.is_empty());
        assert!(!batch.busy(3));
    }
}
