//! Placement scoring: probes, the fused cross-event probe memo, and the
//! admission decision.
//!
//! An arriving DNN is scored against every shard with capacity. Under
//! [`crate::FleetConfig::fused_scoring`] the probes are grouped per
//! platform, deduplicated — within the event (two idle Orange Pis ask the
//! identical question) *and* across events via [`ProbeMemo`] — and the
//! remaining unique questions answered by one
//! [`ThroughputOracle::predict_grouped`] call per oracle. Probe
//! *building* (workload layer-graph construction, the expensive part) is
//! per-shard work and fans across the executor's worker pool between
//! barriers; folding and the cross-shard argmax stay serial in canonical
//! shard order so decisions are bit-identical at any thread count.

use crate::executor::FleetExecutor;
use crate::shard::Shard;
use crate::speculate::{SpecEntry, SpecStat};
use crate::telemetry::stage;
use rankmap_core::oracle::ThroughputOracle;
use rankmap_core::runtime::{ideal_rate_of, priorities_or_uniform, weighted_potential};
use rankmap_models::ModelId;
use rankmap_platform::ComponentId;
use rankmap_sim::{Mapping, Workload};
use rankmap_telemetry::MemoStats;
use std::collections::HashMap;
use std::sync::Arc;

/// Default upper bound on memoized probe answers across all platform
/// groups (each entry is one probe's candidate predictions — a few
/// hundred bytes). Past it the least-recently-used entry is evicted.
pub(crate) const PROBE_MEMO_BOUND: usize = 8_192;

/// One memoized probe answer with its LRU recency stamp.
struct MemoEntry {
    predictions: Vec<Vec<f64>>,
    /// Logical timestamp of the last hit or insert (LRU recency).
    last_used: u64,
}

/// The fused scorer's cross-event memo of oracle answers: one map per
/// platform group, keyed by probe fingerprint, bounded by an LRU policy
/// (the plan cache's eviction pattern: a logical tick stamps every hit
/// and insert, and the least-recently-used entry across *all* groups is
/// evicted first). Entries are pure — a fingerprint fully determines the
/// oracle's answer — so eviction can only cost a recomputation, never
/// change a decision.
pub(crate) struct ProbeMemo {
    groups: Vec<HashMap<Vec<u8>, MemoEntry>>,
    /// Total-entry bound across all groups.
    capacity: usize,
    /// Logical clock driving `last_used`.
    tick: u64,
    hits: u64,
    misses: u64,
}

impl ProbeMemo {
    /// An empty memo for `groups` platform groups holding at most
    /// `capacity` answers in total.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` (a zero-capacity memo would evict every
    /// insert — consistent with `PlanCache::with_capacity`).
    pub(crate) fn new(groups: usize, capacity: usize) -> Self {
        assert!(capacity > 0, "probe_memo_capacity must be positive");
        Self {
            groups: (0..groups).map(|_| HashMap::new()).collect(),
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// The memoized predictions for a probe fingerprint in group `g`,
    /// refreshing the entry's LRU recency on a hit.
    pub(crate) fn get(&mut self, g: usize, key: &[u8]) -> Option<Vec<Vec<f64>>> {
        let now = self.touch();
        match self.groups[g].get_mut(key) {
            Some(entry) => {
                entry.last_used = now;
                self.hits += 1;
                Some(entry.predictions.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Memoizes a probe answer, evicting least-recently-used entries
    /// (across all groups) past the capacity bound.
    pub(crate) fn insert(&mut self, g: usize, key: Vec<u8>, predictions: Vec<Vec<f64>>) {
        let now = self.touch();
        self.groups[g].insert(key, MemoEntry { predictions, last_used: now });
        self.evict_to_capacity();
    }

    /// Total memoized answers across all groups.
    pub(crate) fn len(&self) -> usize {
        self.groups.iter().map(HashMap::len).sum()
    }

    /// Hit/miss counters since construction. The fused scorer consults
    /// the memo once per unique fingerprint per event, so these count
    /// oracle questions saved/asked — not per-shard lookups.
    pub(crate) fn stats(&self) -> MemoStats {
        MemoStats { hits: self.hits, misses: self.misses }
    }

    fn evict_to_capacity(&mut self) {
        while self.len() > self.capacity {
            let Some((g, key)) = self
                .groups
                .iter()
                .enumerate()
                .flat_map(|(g, map)| {
                    map.iter().map(move |(key, entry)| (g, key, entry.last_used))
                })
                .min_by_key(|&(_, _, last_used)| last_used)
                .map(|(g, key, _)| (g, key.clone()))
            else {
                return;
            };
            self.groups[g].remove(&key);
        }
    }
}

/// One prepared placement probe: everything needed to score one shard for
/// one arrival, minus the oracle's answers.
pub(crate) struct Probe {
    pub(crate) shard: usize,
    pub(crate) group: usize,
    pub(crate) trial: Arc<Workload>,
    pub(crate) candidates: Vec<Mapping>,
    weights: Vec<f64>,
    /// The shard's current weighted potential (0 when idle), already
    /// derated — the baseline the delta is measured against.
    before: f64,
    /// The arrival model's ideal rate on this shard's board.
    arrival_ideal: f64,
    /// The shard's served fraction of nominal speed at probe time. Both
    /// sides of the delta and the arrival's potential scale by it (a
    /// throttled board serves every candidate proportionally slower), so
    /// throttled shards bid lower and the admission floor judges the
    /// *served* potential. Deliberately not part of the dedup `key`: the
    /// memo caches raw oracle predictions, which are throttle-invariant.
    derate: f64,
    /// Dedup fingerprint: two probes of the same group with equal keys
    /// are the identical oracle question (same trial set, same survivor
    /// placements, same weights) and share one evaluation under fused
    /// scoring.
    pub(crate) key: Vec<u8>,
}

impl Probe {
    /// Folds the oracle's candidate predictions into a shard score:
    /// `(best normalized-potential delta, arrival's predicted potential
    /// under the best candidate)`.
    pub(crate) fn fold(
        &self,
        ideals: &HashMap<ModelId, f64>,
        admission_floor: f64,
        predictions: &[Vec<f64>],
    ) -> Option<(f64, f64)> {
        // Prefer the best-scoring candidate that clears the admission
        // floor; only when *no* component placement clears it does the
        // shard report a below-floor arrival (and get skipped by
        // `place`). Judging the floor on the single best-total candidate
        // would reject arrivals a slightly-lower-scoring component could
        // serve fine.
        let mut best_any: Option<(f64, f64)> = None;
        let mut best_clearing: Option<(f64, f64)> = None;
        for per_dnn in predictions {
            let arrival_pot =
                self.derate * per_dnn.last().copied().unwrap_or(0.0) / self.arrival_ideal;
            let score =
                self.derate * weighted_potential(ideals, &self.trial, per_dnn, &self.weights);
            if best_any.is_none_or(|(b, _)| score > b) {
                best_any = Some((score, arrival_pot));
            }
            if arrival_pot >= admission_floor
                && best_clearing.is_none_or(|(b, _)| score > b)
            {
                best_clearing = Some((score, arrival_pot));
            }
        }
        best_clearing
            .or(best_any)
            .map(|(score, arrival_pot)| (score - self.before, arrival_pot))
    }
}

impl<O: ThroughputOracle> Shard<'_, O> {
    /// Prepares the placement probe of this shard (index `s`) for an
    /// arriving `model`: trial workload, per-component candidates,
    /// weights, and the shard's baseline score. `None` if the shard is at
    /// capacity. This is the per-shard half of scoring — the expensive
    /// workload construction — and runs on the executor's worker pool.
    pub(crate) fn build_probe(
        &mut self,
        s: usize,
        model: ModelId,
        max_per_shard: usize,
    ) -> Option<Probe> {
        if self.is_down() || self.live_len() >= max_per_shard {
            return None;
        }
        let derate = self.throttle();
        let arrival_ideal = ideal_rate_of(&self.ideals, model);
        // Trial workload: survivors first (keeping their incumbent
        // placements), the arrival appended, tried on every component.
        let trial = self.trial(model);
        // One weight basis for both sides of the delta: the trial
        // workload's resolved vector, its survivor prefix applied to the
        // "before" score. Scoring "before" under the n-DNN vector would
        // let a Static→Dynamic fallback (effective_mode on the n+1
        // workload) masquerade as a placement gain.
        let weights = priorities_or_uniform(&self.mapper, &trial);
        let (before, survivors) = match self.current() {
            None => (0.0, Vec::new()),
            Some(state) => {
                let per_dnn = self.predict_incumbent(&state.0, &state.1);
                let (workload, incumbent) = (&state.0, &state.1);
                // Derated like the candidates in `fold`, so the delta
                // compares served scores on both sides.
                let score = derate
                    * weighted_potential(
                        &self.ideals,
                        workload,
                        &per_dnn,
                        &weights[..workload.len()],
                    );
                (score, incumbent.per_dnn().to_vec())
            }
        };
        let arrival_units = trial.models().last().expect("arrival present").unit_count();
        let candidates: Vec<Mapping> = (0..self.platform.component_count())
            .map(|c| {
                let mut per_dnn = survivors.clone();
                per_dnn.push(vec![ComponentId::new(c); arrival_units]);
                Mapping::new(per_dnn)
            })
            .collect();
        // Fingerprint the oracle question for fused dedup: model ids,
        // survivor placements, and the weight vector pin the answer.
        let mut key = Vec::with_capacity(trial.len() * 9 + survivors.len() * 8);
        for m in trial.models() {
            key.push(m.id() as u8);
        }
        for assign in &survivors {
            key.push(0xFF);
            key.extend(assign.iter().map(|c| c.index() as u8));
        }
        for w in &weights {
            key.extend_from_slice(&w.to_bits().to_le_bytes());
        }
        Some(Probe {
            shard: s,
            group: self.group,
            trial,
            candidates,
            weights,
            before,
            arrival_ideal,
            derate,
            key,
        })
    }
}

impl<'p, O: ThroughputOracle> FleetExecutor<'p, O> {
    /// Scores placing `model` on every shard: `scores[s]` is the shard's
    /// `(normalized potential delta, arrival potential)` — the router's
    /// decision inputs — or `None` for shards at capacity. Potentials are
    /// fractions of each shard's *own* board ideal, so the numbers are
    /// comparable across a mixed fleet.
    pub(crate) fn probe_scores(&mut self, model: ModelId) -> Vec<Option<(f64, f64)>> {
        self.probe_scores_excluding(model, None)
    }

    /// [`FleetExecutor::probe_scores`] with an optional shard left out
    /// entirely (no probe built, no oracle question) — the rebalancer
    /// scores a victim's destinations this way so the source shard never
    /// costs an evaluation it is about to discard.
    pub(crate) fn probe_scores_excluding(
        &mut self,
        model: ModelId,
        exclude: Option<usize>,
    ) -> Vec<Option<(f64, f64)>> {
        self.probe_scores_with(model, exclude, None)
    }

    /// The full scoring fan, optionally seeded with the epoch log's
    /// speculative probes for this arrival (`speculated[s]` is shard
    /// `s`'s entry — see `crate::speculate`).
    ///
    /// Probe building fans across the worker pool (one worker per shard);
    /// memo lookups, the grouped oracle calls, and folding run serially
    /// at the barrier, in canonical shard order, so fused/serial,
    /// sequential/threaded, and barrier/epoch-log execution all produce
    /// bit-identical scores. A speculative probe is only reused when
    /// apply-time validation proves the snapshot it was scored against
    /// is (still, or again) the live shard state:
    ///
    /// * epoch unchanged — the snapshot *is* the live state;
    /// * `0 < lag <= max_epoch_lag` and the placement class key matches —
    ///   the shard returned to a state that builds the bit-identical
    ///   probe (**revalidation**);
    /// * otherwise the entry expired and the probe is **rebuilt** against
    ///   the fresh snapshot (the fallback re-probe).
    pub(crate) fn probe_scores_with(
        &mut self,
        model: ModelId,
        exclude: Option<usize>,
        speculated: Option<Vec<Option<SpecEntry>>>,
    ) -> Vec<Option<(f64, f64)>> {
        let max_per_shard = self.config.max_per_shard;
        let floor = self.config.admission_floor;
        // Indexed mode probes one representative per shard-state class
        // and broadcasts its score to the rest of the class afterwards
        // (equal-state shards fold to bit-identical scores — see
        // `crate::index`). `None` = full fan-out.
        let rep_mask: Option<Vec<bool>> = if self.config.indexed_placement {
            let refile = self.telemetry.stage(stage::INDEX_REFILE);
            let refiled = self.index.refresh(&mut self.shards);
            self.telemetry.finish(refile);
            self.telemetry.count("fleet_index_refiled_total", refiled as u64);
            Some(self.index.representative_mask(exclude))
        } else {
            None
        };
        let build = self.telemetry.stage(stage::PROBE_BUILD);
        let probes: Vec<Option<Probe>> = match speculated {
            None => {
                let fresh = self.for_each_shard(|s, shard| {
                    if Some(s) == exclude || rep_mask.as_ref().is_some_and(|mask| !mask[s]) {
                        None
                    } else {
                        shard.build_probe(s, model, max_per_shard)
                    }
                });
                self.telemetry.finish(build);
                self.telemetry.count(
                    "fleet_probes_built_total",
                    fresh.iter().flatten().count() as u64,
                );
                fresh
            }
            Some(entries) => {
                let max_lag = self.config.parallelism.max_epoch_lag();
                let width = self.config.parallelism.width().min(self.shards.len());
                // Pair every shard with its (taken) speculative entry so
                // the validation fan owns both sides of the comparison.
                let mut pairs: Vec<(&mut Shard<'p, O>, Option<SpecEntry>)> =
                    self.shards.iter_mut().zip(entries).collect();
                let validate = |s: usize,
                                pair: &mut (&mut Shard<'p, O>, Option<SpecEntry>)|
                 -> (Option<Probe>, SpecStat) {
                    let (shard, cell) = pair;
                    if Some(s) == exclude || rep_mask.as_ref().is_some_and(|mask| !mask[s])
                    {
                        // A filed entry for a shard this admission skips
                        // (excluded source, or masked out after the index
                        // refresh) is speculation that bought nothing.
                        let wasted = cell.take().is_some();
                        return (None, SpecStat { wasted, ..SpecStat::default() });
                    }
                    match cell.take() {
                        // Nothing speculated for this shard (flushed, or
                        // it was no representative then): build fresh.
                        None => (
                            shard.build_probe(s, model, max_per_shard),
                            SpecStat::default(),
                        ),
                        Some(entry) => {
                            let lag = shard.epoch().saturating_sub(entry.epoch);
                            let stat = SpecStat { consulted: true, lag, ..SpecStat::default() };
                            if lag == 0 {
                                (entry.probe, SpecStat { reused: true, ..stat })
                            } else if lag <= max_lag
                                && shard.placement_class_key() == entry.class_key
                            {
                                (
                                    entry.probe,
                                    SpecStat { reused: true, revalidated: true, ..stat },
                                )
                            } else {
                                (
                                    shard.build_probe(s, model, max_per_shard),
                                    SpecStat {
                                        revalidated: lag <= max_lag,
                                        refreshed: true,
                                        wasted: true,
                                        ..stat
                                    },
                                )
                            }
                        }
                    }
                };
                let validated: Vec<(Option<Probe>, SpecStat)> = if width <= 1 {
                    pairs
                        .iter_mut()
                        .enumerate()
                        .map(|(s, pair)| validate(s, pair))
                        .collect()
                } else {
                    rayon::iter::par_map_slice_mut(&mut pairs, width, &validate)
                };
                drop(pairs);
                self.telemetry.finish(build);
                // Serial merge of the fan's observability: counters plus
                // the per-shard lag gauges the sampler exports.
                let (mut reused, mut revalidations, mut refreshes, mut built, mut wasted) =
                    (0u64, 0u64, 0u64, 0u64, 0u64);
                let mut probes = Vec::with_capacity(validated.len());
                for (s, (probe, stat)) in validated.into_iter().enumerate() {
                    if stat.consulted {
                        self.epoch_lags[s] = stat.lag;
                    }
                    reused += u64::from(stat.reused);
                    revalidations += u64::from(stat.revalidated);
                    refreshes += u64::from(stat.refreshed);
                    wasted += u64::from(stat.wasted);
                    built += u64::from(probe.is_some() && !stat.reused);
                    probes.push(probe);
                }
                self.telemetry.count("fleet_probes_built_total", built);
                self.telemetry.count("fleet_spec_probes_reused_total", reused);
                self.telemetry.count("fleet_staleness_revalidations_total", revalidations);
                self.telemetry.count("fleet_staleness_refreshes_total", refreshes);
                self.telemetry.count("fleet_spec_probes_wasted_total", wasted);
                probes
            }
        };
        let scoring = self.telemetry.stage(stage::FUSED_SCORING);
        let mut scores: Vec<Option<(f64, f64)>> = vec![None; self.shards.len()];
        if !self.config.fused_scoring {
            // Serial reference: one predict_batch round-trip per shard.
            for probe in probes.iter().flatten() {
                let shard = &self.shards[probe.shard];
                let predictions =
                    shard.oracle.predict_batch(&probe.trial, &probe.candidates);
                scores[probe.shard] = probe.fold(&shard.ideals, floor, &predictions);
            }
            self.telemetry.finish(scoring);
            if rep_mask.is_some() {
                let copied = self.index.broadcast(exclude, &mut scores);
                self.telemetry.count("fleet_index_broadcast_total", copied as u64);
            }
            return scores;
        }
        for g in 0..self.group_oracles.len() {
            // Deduplicate this group's probes against the cross-event
            // memo and against each other: every distinct oracle question
            // is asked exactly once.
            let members: Vec<&Probe> =
                probes.iter().flatten().filter(|p| p.group == g).collect();
            if members.is_empty() {
                continue;
            }
            let mut unique: Vec<&Probe> = Vec::new();
            let mut answer_of: HashMap<&[u8], Result<Vec<Vec<f64>>, usize>> = HashMap::new();
            // Answer per member: Ok(memoized predictions) or Err(slot
            // into the unique list awaiting this event's grouped call).
            // The memo is consulted once per *unique* fingerprint, so its
            // hit/miss counters report oracle questions saved/asked — not
            // one miss per shard sharing a deduplicated question.
            let memo = &mut self.probe_memo;
            let pending: Vec<Result<Vec<Vec<f64>>, usize>> = members
                .iter()
                .map(|probe| {
                    answer_of
                        .entry(probe.key.as_slice())
                        .or_insert_with(|| match memo.get(g, &probe.key) {
                            Some(hit) => Ok(hit),
                            None => {
                                unique.push(probe);
                                Err(unique.len() - 1)
                            }
                        })
                        .clone()
                })
                .collect();
            let queries: Vec<(&Workload, &[Mapping])> = unique
                .iter()
                .map(|p| (p.trial.as_ref(), p.candidates.as_slice()))
                .collect();
            let predictions = self.group_oracles[g].predict_grouped(&queries);
            for (probe, answer) in unique.iter().zip(&predictions) {
                self.probe_memo.insert(g, probe.key.clone(), answer.clone());
            }
            for (probe, answer) in members.iter().zip(&pending) {
                let predictions = match answer {
                    Ok(memoized) => memoized,
                    Err(slot) => &predictions[*slot],
                };
                scores[probe.shard] =
                    probe.fold(&self.shards[probe.shard].ideals, floor, predictions);
            }
        }
        self.telemetry.finish(scoring);
        if rep_mask.is_some() {
            let copied = self.index.broadcast(exclude, &mut scores);
            self.telemetry.count("fleet_index_broadcast_total", copied as u64);
        }
        scores
    }

    /// The admission/placement decision: the shard with the best
    /// normalized potential delta whose arrival potential clears the
    /// floor, or `None` (reject). `speculated` carries the epoch log's
    /// probes for this arrival, if any — validated per shard inside the
    /// fan, so the argmax runs over exactly the scores a fresh fan would
    /// produce.
    pub(crate) fn place(
        &mut self,
        model: ModelId,
        speculated: Option<Vec<Option<SpecEntry>>>,
    ) -> Option<(usize, f64)> {
        let floor = self.config.admission_floor;
        let mut best: Option<(usize, f64)> = None;
        for (s, score) in self.probe_scores_with(model, None, speculated).into_iter().enumerate()
        {
            let Some((delta, arrival_pot)) = score else { continue };
            if arrival_pot < floor {
                continue;
            }
            if best.is_none_or(|(_, b)| delta > b) {
                best = Some((s, delta));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn answer(v: f64) -> Vec<Vec<f64>> {
        vec![vec![v]]
    }

    #[test]
    fn memo_evicts_least_recently_used_first() {
        let mut memo = ProbeMemo::new(1, 2);
        memo.insert(0, vec![0], answer(0.0));
        memo.insert(0, vec![1], answer(1.0));
        // Touch key 0 so key 1 becomes the LRU entry...
        assert_eq!(memo.get(0, &[0]), Some(answer(0.0)));
        // ...and inserting key 2 must evict key 1, not 0.
        memo.insert(0, vec![2], answer(2.0));
        assert_eq!(memo.len(), 2);
        assert!(memo.get(0, &[0]).is_some(), "recently used survives");
        assert!(memo.get(0, &[2]).is_some(), "new entry present");
        assert!(memo.get(0, &[1]).is_none(), "LRU entry evicted");
    }

    #[test]
    fn memo_bound_spans_all_groups() {
        // The capacity bounds the *total* across groups (the old
        // wholesale reset counted the same way), and eviction picks the
        // globally least-recently-used entry, whichever group holds it.
        let mut memo = ProbeMemo::new(2, 2);
        memo.insert(0, vec![0], answer(0.0));
        memo.insert(1, vec![1], answer(1.0));
        memo.insert(1, vec![2], answer(2.0));
        assert_eq!(memo.len(), 2);
        assert!(memo.get(0, &[0]).is_none(), "group 0's older entry was the global LRU");
        assert!(memo.get(1, &[1]).is_some());
        assert!(memo.get(1, &[2]).is_some());
    }

    #[test]
    fn memo_hits_refresh_recency_and_count() {
        let mut memo = ProbeMemo::new(1, 8);
        memo.insert(0, vec![9], answer(9.0));
        assert_eq!(memo.stats(), MemoStats::new());
        assert!(memo.get(0, &[9]).is_some());
        assert!(memo.get(0, &[8]).is_none());
        assert_eq!(memo.stats(), MemoStats { hits: 1, misses: 1 });
    }

    #[test]
    #[should_panic(expected = "probe_memo_capacity")]
    fn zero_capacity_memo_is_rejected_loudly() {
        let _ = ProbeMemo::new(1, 0);
    }
}
