//! One device shard: its board profile, mapper, step-wise serving
//! session, and the per-shard memos the placement layer leans on.
//!
//! A [`Shard`] is deliberately **owned, `Send` state** — no `Rc`, no
//! `RefCell` — so the executor can hand `&mut Shard` to a worker thread
//! between event barriers (see `crate::executor`). Every memo is a plain
//! field mutated through `&mut self`: a shard is only ever touched by one
//! thread at a time, and the type system now proves it.

use rankmap_core::oracle::ThroughputOracle;
use rankmap_core::runtime::{
    weighted_potential, DynamicEvent, InstanceId, PreparedApply, RankMapMapper, RuntimeSession,
};
use rankmap_models::ModelId;
use rankmap_platform::{ComponentId, Platform};
use rankmap_sim::{Mapping, Workload};
use std::collections::HashMap;
use std::sync::Arc;

/// A shard's current (workload, incumbent mapping) pair, shared out of
/// the memo without cloning the underlying layer graphs.
pub(crate) type ShardState = Arc<(Workload, Mapping)>;

/// One device shard: its board, mapper (manager + priority mode), and
/// step-wise serving session.
pub(crate) struct Shard<'p, O: ThroughputOracle> {
    /// The shard's own board profile.
    pub(crate) platform: &'p Platform,
    /// The oracle scoring this shard's placements (shared by its group).
    pub(crate) oracle: &'p O,
    /// Index of the shard's [`crate::FleetSpec`] group — the fused
    /// scorer's batching domain.
    pub(crate) group: usize,
    /// Per-model ideal rates measured on *this* board — the normalization
    /// denominators of every potential this shard reports.
    pub(crate) ideals: HashMap<ModelId, f64>,
    pub(crate) mapper: RankMapMapper<'p, O>,
    pub(crate) session: RuntimeSession<'p>,
    /// Memoized oracle prediction of the current (workload, incumbent)
    /// pair. Placement probes run for *every* offered event against
    /// *every* shard, but a shard's incumbent only changes when its own
    /// `apply` runs — so the prediction is cached here and invalidated on
    /// apply.
    incumbent_prediction: Option<Vec<f64>>,
    /// Memoized current (workload, incumbent mapping) pair — building a
    /// `Workload` constructs full per-model layer graphs, far too
    /// expensive to repeat for every probe of every offered event.
    /// `None` = not computed yet; `Some(None)` = computed, shard idle.
    /// Invalidated on apply.
    current_state: Option<Option<ShardState>>,
    /// Memoized placement-probe trial workloads (live set + arrival),
    /// keyed by arrival model. Invalidated on apply.
    trial_cache: HashMap<ModelId, Arc<Workload>>,
    /// Whether the shard is currently failed. A down shard builds no
    /// probes (it cannot take arrivals), reports no health, and serves
    /// nothing — its live set was evacuated or shed when it went down.
    down: bool,
    /// Served fraction of nominal speed in `(0, 1]` (thermal throttle).
    /// `Platform::scaled` keeps potential invariant under uniform
    /// scaling, so the throttle surfaces as a pure multiplicative derate
    /// on served throughput and on every placement/health score — probe
    /// memo entries (raw oracle predictions) stay valid across throttle
    /// changes.
    throttle: f64,
    /// Bumped on every state mutation (`apply`, `commit`, `mark_down`) —
    /// the staleness signal `crate::index::PlacementIndex` watches, so a
    /// refresh only recomputes shards an event actually touched, and the
    /// validity stamp of the apply-lane scheduler (a [`ShardPrepared`] is
    /// committed only while the shard still sits at the stamped epoch).
    /// Mutation funnels through `apply` and `commit` (revive and
    /// set_throttle call `apply`), leaving `mark_down` as the only other
    /// bump site.
    epoch: u64,
}

impl<'p, O: ThroughputOracle> Shard<'p, O> {
    /// Assembles a shard with cold memos.
    pub(crate) fn new(
        platform: &'p Platform,
        oracle: &'p O,
        group: usize,
        ideals: HashMap<ModelId, f64>,
        mapper: RankMapMapper<'p, O>,
        session: RuntimeSession<'p>,
    ) -> Self {
        Self {
            platform,
            oracle,
            group,
            ideals,
            mapper,
            session,
            incumbent_prediction: None,
            current_state: None,
            trial_cache: HashMap::new(),
            down: false,
            throttle: 1.0,
            epoch: 0,
        }
    }

    /// Monotone mutation counter (see the `epoch` field).
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch
    }

    pub(crate) fn live_len(&self) -> usize {
        self.session.live().len()
    }

    /// Whether the shard is currently failed.
    pub(crate) fn is_down(&self) -> bool {
        self.down
    }

    /// The shard's current served fraction of nominal speed.
    pub(crate) fn throttle(&self) -> f64 {
        self.throttle
    }

    /// Marks the shard failed. The caller (the executor's `ShardDown`
    /// handling) evacuates or sheds the live set *before* this — a down
    /// shard must be empty.
    pub(crate) fn mark_down(&mut self) {
        debug_assert!(self.live_len() == 0, "a shard goes down only after evacuation");
        self.down = true;
        self.epoch += 1;
    }

    /// Repairs the shard: it rejoins empty, at nominal speed (a repaired
    /// board boots with thermals reset, so any pre-failure throttle is
    /// cleared).
    pub(crate) fn revive(&mut self, at: f64, window: f64) {
        self.down = false;
        self.throttle = 1.0;
        self.session.set_derate(1.0);
        self.apply(at, &[], window);
    }

    /// Applies a thermal throttle: subsequent served throughput, recorded
    /// potential, and placement/health scores all scale by `factor`. An
    /// empty apply closes the running segment so the derate takes effect
    /// exactly at `at`.
    pub(crate) fn set_throttle(&mut self, at: f64, factor: f64, window: f64) {
        self.throttle = factor;
        self.session.set_derate(factor);
        self.apply(at, &[], window);
    }

    /// Current workload + incumbent mapping in live order, memoized until
    /// the next `apply` (`None` when idle).
    pub(crate) fn current(&mut self) -> Option<ShardState> {
        if self.current_state.is_none() {
            self.current_state = Some(if self.session.live().is_empty() {
                None
            } else {
                let workload =
                    Workload::from_ids(self.session.live().iter().map(|(_, m)| *m));
                let per_dnn: Vec<Vec<ComponentId>> = self
                    .session
                    .live()
                    .iter()
                    .map(|(id, _)| {
                        self.session.placement(*id).expect("live instance placed").to_vec()
                    })
                    .collect();
                Some(Arc::new((workload, Mapping::new(per_dnn))))
            });
        }
        self.current_state.as_ref().expect("just computed").clone()
    }

    /// The probe trial workload for an arriving `model` (live set first,
    /// arrival appended), memoized until the next `apply`.
    pub(crate) fn trial(&mut self, model: ModelId) -> Arc<Workload> {
        let session = &self.session;
        self.trial_cache
            .entry(model)
            .or_insert_with(|| {
                Arc::new(Workload::from_ids(
                    session
                        .live()
                        .iter()
                        .map(|(_, m)| *m)
                        .chain(std::iter::once(model)),
                ))
            })
            .clone()
    }

    /// The oracle's per-DNN prediction for the current incumbent,
    /// memoized until the next `apply`.
    pub(crate) fn predict_incumbent(
        &mut self,
        workload: &Workload,
        incumbent: &Mapping,
    ) -> Vec<f64> {
        self.incumbent_prediction
            .get_or_insert_with(|| self.oracle.predict(workload, incumbent))
            .clone()
    }

    /// Unweighted mean potential of a predicted report under this shard's
    /// own ideals, derated by the current throttle — the collapse signal
    /// the rebalancer and the overload guard watch (and re-check on the
    /// survivor set). At nominal speed the `× 1.0` is exact, so
    /// throttle-free runs are bit-identical to the pre-throttle code.
    pub(crate) fn uniform_mean_potential(&self, workload: &Workload, per_dnn: &[f64]) -> f64 {
        let uniform = vec![1.0; workload.len()];
        self.throttle * weighted_potential(&self.ideals, workload, per_dnn, &uniform)
            / workload.len() as f64
    }

    /// Mean predicted potential of this shard's current workload under its
    /// incumbent mapping (`None` when idle).
    pub(crate) fn mean_potential(&mut self) -> Option<f64> {
        let state = self.current()?;
        let per_dnn = self.predict_incumbent(&state.0, &state.1);
        Some(self.uniform_mean_potential(&state.0, &per_dnn))
    }

    /// Applies a batch of same-time events on this shard's session,
    /// invalidating every probe memo first (the live set is about to
    /// change).
    pub(crate) fn apply(
        &mut self,
        at: f64,
        events: &[DynamicEvent],
        window: f64,
    ) -> Vec<InstanceId> {
        self.incumbent_prediction = None;
        self.current_state = None;
        self.trial_cache.clear();
        self.epoch += 1;
        self.session.advance_to(at);
        self.session.apply(events, window, &mut self.mapper)
    }

    /// The [`InstanceId`] this shard's next committed arrival will
    /// receive — the identity pin the apply-lane scheduler records at
    /// the log cursor, before the apply itself retires on the shard's
    /// lane. Exact because instance ordinals advance only on
    /// apply/commit, and the lane protocol admits at most one pending
    /// apply per shard.
    pub(crate) fn next_instance_id(&self) -> InstanceId {
        self.session.peek_next_instance_id()
    }

    /// Runs the expensive half of [`Shard::apply`] — remap, migration
    /// decision, event-engine evaluation — **without mutating the
    /// shard**, capturing every effect (including the post-apply probe
    /// memos) into a [`ShardPrepared`] stamped with the current epoch.
    /// Lanes call this concurrently across disjoint shards; the serial
    /// commit walk later installs each capture in log order via
    /// [`Shard::commit`], or hands it to [`Shard::discard`] when an
    /// intervening cross-shard decision bumped the epoch (the session
    /// and the mapper's plan cache were never mutated — the speculative
    /// remap's cache footprint rides the capture instead).
    ///
    /// `throttle` carries a derate override for `ShardThrottle` ops: the
    /// session's derate is set for the duration of the prepare (so the
    /// captured segment opens under the new factor, exactly as
    /// [`Shard::set_throttle`] would) and restored afterwards — the
    /// override only sticks on commit.
    pub(crate) fn prepare(
        &mut self,
        at: f64,
        events: &[DynamicEvent],
        window: f64,
        throttle: Option<f64>,
    ) -> ShardPrepared {
        debug_assert!(!self.down, "lanes never prepare an apply on a down shard");
        let epoch_stamp = self.epoch;
        let saved_derate = self.session.derate();
        if let Some(factor) = throttle {
            self.session.set_derate(factor);
        }
        // The remap inside the prepare reads AND writes the mapper's plan
        // cache, and cache state (contents, LRU recency, counters) is an
        // input of later remaps — so the speculation runs clone-and-swap:
        // snapshot the cache, let the remap mutate it, then swap the
        // pristine snapshot back and carry the mutated state in the
        // capture. Commit installs it (valid stamp ⇒ nothing touched the
        // cache in between, so it is exactly the serial apply's state);
        // discard just drops it — crucially, a mid-walk decision that
        // remapped this shard between prepare and discard (a rebalance
        // migration, a shed) keeps its own cache footprint, which an
        // in-place undo log would have clobbered.
        let cache_pre = self.mapper.manager().plan_cache_snapshot();
        let prepared = self.session.prepare_apply(at, events, window, &mut self.mapper);
        let cache_post = self.mapper.manager().plan_cache_restore(cache_pre);
        if throttle.is_some() {
            self.session.set_derate(saved_derate);
        }
        // Rebuild the post-apply memos from the capture, by the same
        // construction `Shard::current` uses — so a committed lane apply
        // leaves memos bit-identical to an eager apply's next lazy fill.
        let post_state: Option<ShardState> = if prepared.live().is_empty() {
            None
        } else {
            let workload = Workload::from_ids(prepared.live().iter().map(|(_, m)| *m));
            let per_dnn: Vec<Vec<ComponentId>> = prepared
                .live()
                .iter()
                .map(|(id, _)| {
                    prepared.placement(*id).expect("live instance placed").to_vec()
                })
                .collect();
            Some(Arc::new((workload, Mapping::new(per_dnn))))
        };
        let post_prediction =
            post_state.as_ref().map(|st| self.oracle.predict(&st.0, &st.1));
        ShardPrepared { epoch_stamp, prepared, throttle, post_state, post_prediction, cache_post }
    }

    /// Drops a capture whose epoch stamp went stale. Discarding must
    /// leave **no observable trace**: cache contents, LRU recency, and
    /// hit/miss state all steer later remaps, so a leaked speculative
    /// footprint would silently fork the lane run from the serial oracle
    /// (the `fleet_async` bench's bit-identity assertion catches exactly
    /// this). Under clone-and-swap the live cache never saw the
    /// speculation, so dropping the capture — its `cache_post` included —
    /// *is* the discard, and whatever the invalidating decision itself
    /// wrote to this shard's cache stands untouched.
    pub(crate) fn discard(&mut self, p: ShardPrepared) {
        drop(p);
    }

    /// Installs a [`Shard::prepare`] capture. The caller proves validity
    /// by the epoch stamp: no other mutation touched this shard since
    /// the prepare. Equivalent to the eager [`Shard::apply`] (or
    /// [`Shard::set_throttle`], when the capture carries an override) it
    /// stands in for, memos and plan-cache state included.
    pub(crate) fn commit(&mut self, p: ShardPrepared) -> Vec<InstanceId> {
        debug_assert_eq!(
            p.epoch_stamp, self.epoch,
            "a prepared apply commits only at its stamped epoch"
        );
        self.incumbent_prediction = p.post_prediction;
        self.current_state = Some(p.post_state);
        self.trial_cache.clear();
        self.epoch += 1;
        if let Some(factor) = p.throttle {
            self.throttle = factor;
        }
        // The valid stamp also proves the plan cache is still the
        // prepare's pre-snapshot (every mid-walk decision that remaps a
        // shard bumps its epoch), so installing the speculative post
        // state lands the exact cache the serial apply would have built.
        self.mapper.manager().plan_cache_restore(p.cache_post);
        self.session.commit_apply(p.prepared)
    }

    /// Byte key pinning every input of `build_probe` and
    /// [`Shard::mean_potential`]: platform group, throttle bits, live
    /// model ids in live order, and per-instance placements. Two up
    /// shards with equal keys build bit-identical probes (same trial
    /// workload, candidates, weights, baseline, derate) and report the
    /// identical health mean — the equivalence the placement index's
    /// representative probing rests on. `None` while down: a down shard
    /// is unprobeable and unfiled. The mapper's priority mode is
    /// deliberately absent — `SetPriorities` is a fleet-wide broadcast,
    /// so the mode never differs between shards.
    pub(crate) fn placement_class_key(&mut self) -> Option<Vec<u8>> {
        if self.is_down() {
            return None;
        }
        let mut key = Vec::with_capacity(12 + self.live_len() * 8);
        key.extend_from_slice(&(self.group as u32).to_le_bytes());
        key.extend_from_slice(&self.throttle.to_bits().to_le_bytes());
        if let Some(state) = self.current() {
            for m in state.0.models() {
                key.push(m.id() as u8);
            }
            for assign in state.1.per_dnn() {
                key.push(0xFF);
                key.extend(assign.iter().map(|c| c.index() as u8));
            }
        }
        Some(key)
    }
}

/// One prepared-but-uncommitted shard apply: the capture of the
/// session mutation plus the rebuilt post-apply memos, stamped with the
/// epoch it was prepared against. Inert `Send` data between
/// [`Shard::prepare`] and [`Shard::commit`].
pub(crate) struct ShardPrepared {
    epoch_stamp: u64,
    prepared: PreparedApply,
    /// A `ShardThrottle` op's derate override, installed on commit.
    throttle: Option<f64>,
    post_state: Option<ShardState>,
    post_prediction: Option<Vec<f64>>,
    /// The plan cache as the prepare's speculative remap left it — the
    /// live cache keeps the pre-snapshot until [`Shard::commit`] installs
    /// this (or [`Shard::discard`] drops it).
    cache_post: rankmap_core::plan_cache::PlanCache,
}

impl ShardPrepared {
    /// The epoch of the owning shard when the prepare ran — the commit
    /// walk's validity check.
    pub(crate) fn epoch_stamp(&self) -> u64 {
        self.epoch_stamp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankmap_core::oracle::AnalyticalOracle;

    /// The tentpole's structural guarantee: a shard can be handed to a
    /// worker thread. This fails to compile if `Rc`/`RefCell` (or any
    /// other non-`Send` state) creeps back in.
    #[test]
    fn shards_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Shard<'static, AnalyticalOracle<'static>>>();
        assert_send::<ShardState>();
        assert_send::<ShardPrepared>();
    }
}
