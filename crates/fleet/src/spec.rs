//! Fleet composition: which boards (and how many of each) a
//! [`FleetRuntime`](crate::FleetRuntime) serves on.
//!
//! A [`FleetSpec`] is an ordered list of [`ShardSpec`] groups; each group
//! contributes `count` shards running on one `Platform` scored by one
//! [`ThroughputOracle`]. Shard indices are assigned group by group, in
//! order — a spec of `[orange × 2, jetson × 2]` produces shards
//! `0, 1` on the Orange Pi and `2, 3` on the Jetson — and the group also
//! scopes the fused placement scorer: probes for shards of one group are
//! answered by one [`ThroughputOracle::predict_grouped`] call.
//!
//! # Example
//!
//! ```
//! use rankmap_core::oracle::AnalyticalOracle;
//! use rankmap_fleet::{FleetSpec, ShardSpec};
//! use rankmap_platform::Platform;
//!
//! let orange = Platform::orange_pi_5();
//! let jetson = Platform::jetson_orin_nx();
//! let orange_oracle = AnalyticalOracle::new(&orange);
//! let jetson_oracle = AnalyticalOracle::new(&jetson);
//! let spec = FleetSpec::new(vec![
//!     ShardSpec::new(&orange, &orange_oracle, 2),
//!     ShardSpec::new(&jetson, &jetson_oracle, 2),
//! ]);
//! assert_eq!(spec.shard_count(), 4);
//! assert_eq!(spec.platform_names(), ["orange-pi-5", "orange-pi-5",
//!                                    "jetson-orin-nx", "jetson-orin-nx"]);
//! ```

use rankmap_core::oracle::ThroughputOracle;
use rankmap_platform::Platform;
use std::fmt;

/// Why a fleet composition was rejected at construction — caught here,
/// with the offending group named, instead of surfacing later as an
/// index panic deep in the executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetSpecError {
    /// The group list was empty: a fleet needs at least one shard group.
    NoGroups,
    /// The group at this index declared `count == 0`.
    EmptyGroup {
        /// Index of the zero-count group in the spec's group list.
        index: usize,
    },
}

impl fmt::Display for FleetSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetSpecError::NoGroups => {
                write!(f, "a fleet needs at least one shard group")
            }
            FleetSpecError::EmptyGroup { index } => {
                write!(f, "shard group {index} needs at least one shard")
            }
        }
    }
}

impl std::error::Error for FleetSpecError {}

/// One homogeneous group of device shards: `count` boards of one platform
/// profile, scored by one oracle.
#[derive(Debug, Clone, Copy)]
pub struct ShardSpec<'p, O: ThroughputOracle> {
    /// The board profile every shard of this group runs on.
    pub platform: &'p Platform,
    /// The throughput oracle scoring this group's placements. Its
    /// predictions must be for `platform` — e.g. an
    /// [`AnalyticalOracle`](rankmap_core::oracle::AnalyticalOracle)
    /// constructed over the same reference.
    pub oracle: &'p O,
    /// Number of identical shards in the group.
    pub count: usize,
}

impl<'p, O: ThroughputOracle> ShardSpec<'p, O> {
    /// A group of `count` shards on `platform`, scored by `oracle`.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    pub fn new(platform: &'p Platform, oracle: &'p O, count: usize) -> Self {
        assert!(count > 0, "a shard group needs at least one shard");
        Self { platform, oracle, count }
    }
}

/// The composition of a (possibly heterogeneous) fleet: ordered shard
/// groups, each with its own platform profile and oracle.
#[derive(Debug, Clone)]
pub struct FleetSpec<'p, O: ThroughputOracle> {
    groups: Vec<ShardSpec<'p, O>>,
}

impl<'p, O: ThroughputOracle> FleetSpec<'p, O> {
    /// A fleet composed of the given shard groups, in order.
    ///
    /// # Panics
    ///
    /// Panics if the composition is invalid (see
    /// [`FleetSpec::try_new`]).
    pub fn new(groups: Vec<ShardSpec<'p, O>>) -> Self {
        Self::try_new(groups).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`FleetSpec::new`] with the validation surfaced as a `Result`:
    /// rejects an empty group list and any zero-count group (reachable
    /// by building a [`ShardSpec`] literal around
    /// [`ShardSpec::new`]'s own check) with a clear error instead of a
    /// downstream index panic.
    ///
    /// # Errors
    ///
    /// [`FleetSpecError::NoGroups`] for an empty list;
    /// [`FleetSpecError::EmptyGroup`] naming the first zero-count group.
    pub fn try_new(groups: Vec<ShardSpec<'p, O>>) -> Result<Self, FleetSpecError> {
        if groups.is_empty() {
            return Err(FleetSpecError::NoGroups);
        }
        if let Some(index) = groups.iter().position(|g| g.count == 0) {
            return Err(FleetSpecError::EmptyGroup { index });
        }
        Ok(Self { groups })
    }

    /// A homogeneous fleet: `count` shards of one platform and oracle.
    pub fn homogeneous(platform: &'p Platform, oracle: &'p O, count: usize) -> Self {
        Self::new(vec![ShardSpec::new(platform, oracle, count)])
    }

    /// The shard groups, in shard-index order.
    pub fn groups(&self) -> &[ShardSpec<'p, O>] {
        &self.groups
    }

    /// Total number of shards across all groups.
    pub fn shard_count(&self) -> usize {
        self.groups.iter().map(|g| g.count).sum()
    }

    /// Per-shard platform names, in shard-index order — the fleet mix a
    /// version-2 trace records (see [`crate::TraceMeta::platforms`]).
    pub fn platform_names(&self) -> Vec<String> {
        self.groups
            .iter()
            .flat_map(|g| std::iter::repeat_n(g.platform.name().to_string(), g.count))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankmap_core::oracle::AnalyticalOracle;

    #[test]
    fn shard_indices_follow_group_order() {
        let orange = Platform::orange_pi_5();
        let jetson = Platform::jetson_orin_nx();
        let o1 = AnalyticalOracle::new(&orange);
        let o2 = AnalyticalOracle::new(&jetson);
        let spec =
            FleetSpec::new(vec![ShardSpec::new(&orange, &o1, 1), ShardSpec::new(&jetson, &o2, 2)]);
        assert_eq!(spec.shard_count(), 3);
        assert_eq!(
            spec.platform_names(),
            ["orange-pi-5", "jetson-orin-nx", "jetson-orin-nx"]
        );
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn empty_group_panics() {
        let p = Platform::orange_pi_5();
        let o = AnalyticalOracle::new(&p);
        let _ = ShardSpec::new(&p, &o, 0);
    }

    #[test]
    #[should_panic(expected = "at least one shard group")]
    fn empty_fleet_panics() {
        let _ = FleetSpec::<AnalyticalOracle>::new(Vec::new());
    }

    #[test]
    fn try_new_names_the_offending_group() {
        assert_eq!(
            FleetSpec::<AnalyticalOracle>::try_new(Vec::new()).unwrap_err(),
            FleetSpecError::NoGroups
        );
        let p = Platform::orange_pi_5();
        let o = AnalyticalOracle::new(&p);
        // A zero-count group built around ShardSpec::new's check (the
        // fields are public) is caught at fleet construction, by index.
        let groups = vec![
            ShardSpec::new(&p, &o, 1),
            ShardSpec { platform: &p, oracle: &o, count: 0 },
        ];
        let err = FleetSpec::try_new(groups).unwrap_err();
        assert_eq!(err, FleetSpecError::EmptyGroup { index: 1 });
        assert!(err.to_string().contains("group 1"), "{err}");
        // And the panicking constructor reports the same story.
        let ok = FleetSpec::try_new(vec![ShardSpec::new(&p, &o, 2)]).expect("valid");
        assert_eq!(ok.shard_count(), 2);
    }
}
