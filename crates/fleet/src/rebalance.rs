//! Cross-shard rebalancing: a shard whose predicted potential collapses
//! sheds its lowest-priority instance to a healthier shard.
//!
//! The health scan (one oracle prediction per loaded shard) and the
//! destination probes fan across the executor's worker pool; victim
//! selection and the destination argmax run serially at the barrier over
//! the merged, shard-ordered results — so the migration chosen under
//! [`crate::Parallelism::Threads`] is bit-identical to the sequential
//! reference's. The source's departure and the destination's arrival are
//! then applied concurrently (they touch disjoint shards).
//!
//! Under the apply-lane scheduler (`apply_lanes`, see `crate::lanes`)
//! rebalancing is one of the *deferred checks* that ride the lane walk:
//! it runs after each committed log position, exactly where the serial
//! cursor would run it, and a migration it performs bumps both the
//! source's and the destination's epochs — invalidating any later
//! prepared op on those shards, which then discards and applies directly.
//! A transfer it performs is itself a pair of direct applies, never a
//! lane op: it reads cross-shard state, so it sequences with the walk.

use crate::executor::{Disposition, FleetExecutor};
use crate::load::RequestId;
use rankmap_core::oracle::ThroughputOracle;
use rankmap_core::runtime::{priorities_or_uniform, DynamicEvent};
use rankmap_sim::{Mapping, MigrationModel, Workload};
use std::collections::HashMap;

impl<O: ThroughputOracle> FleetExecutor<'_, O> {
    /// One rebalance attempt at time `t`: if some shard's mean predicted
    /// potential collapsed below the threshold, move its lowest-priority
    /// instance to the shard that takes it best — provided the move
    /// clears the admission floor at the destination and improves the
    /// source by the configured margin. Because every quantity involved
    /// is a fraction of the owning board's ideal, a collapsed Jetson can
    /// shed onto an Orange Pi (and vice versa) on equal terms. Returns
    /// the migration performed.
    pub(crate) fn maybe_rebalance(
        &mut self,
        t: f64,
        requests: &mut HashMap<RequestId, Disposition>,
    ) -> Option<(usize, usize)> {
        // Health question: the worst collapsed shard with something to
        // shed — an O(log S) index read, or (in scan mode) a parallel
        // prediction fan-out resolved serially in shard order.
        let (src, src_mean) = self.worst_loaded()?;
        if src_mean >= self.config.rebalance_threshold {
            return None;
        }
        // Victim: the live instance with the smallest priority weight.
        let state = self.shards[src].current()?;
        let (workload, incumbent) = (&state.0, &state.1);
        let weights = priorities_or_uniform(&self.shards[src].mapper, workload);
        let victim_idx = weights
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)?;
        let (victim_id, victim_model) = self.shards[src].session.live()[victim_idx];
        // Does shedding the victim actually heal the source?
        let keep = |d: usize| d != victim_idx;
        let survivors = Workload::from_ids(
            workload
                .models()
                .iter()
                .enumerate()
                .filter(|&(d, _)| keep(d))
                .map(|(_, m)| m.id()),
        );
        let survivor_mapping = Mapping::new(
            incumbent
                .per_dnn()
                .iter()
                .enumerate()
                .filter(|&(d, _)| keep(d))
                .map(|(_, assign)| assign.clone())
                .collect(),
        );
        let healed = self.shards[src].uniform_mean_potential(
            &survivors,
            &self.shards[src].oracle.predict(&survivors, &survivor_mapping),
        );
        if healed < src_mean + self.config.rebalance_margin {
            return None;
        }
        // Best destination (capacity + floor), excluding the source. The
        // destination's own predicted loss must not exceed the source's
        // predicted healing (heuristically comparing the weighted delta
        // against the uniform mean gain — both normalized
        // fraction-of-ideal scale, so the comparison holds across board
        // types), so a move that hurts the fleet more than it heals the
        // source never fires and migrations cannot thrash between loaded
        // shards.
        let healing = healed - src_mean;
        let floor = self.config.admission_floor;
        let dst = self
            .probe_scores_excluding(victim_model, Some(src))
            .into_iter()
            .enumerate()
            .filter_map(|(s, score)| {
                score.and_then(|(delta, arrival_pot)| {
                    (arrival_pot >= floor && delta >= -healing).then_some((s, delta))
                })
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(s, _)| s)?;
        // Execute: depart from the source, arrive at the destination —
        // concurrently when the executor is threaded (the two applies
        // touch disjoint shards). The receiving board is not free —
        // charge it (at least) the full on-board restage of the victim's
        // weights plus its stem rebuild, over *its own* transfer link, so
        // rebalancing cannot ping-pong instances at no modeled cost.
        let window = self.config.decision_window;
        let depart = [DynamicEvent::depart(t, victim_id)];
        let arrive = [DynamicEvent::arrive(t, victim_model)];
        let assigned = {
            let (lo, hi) = self.shards.split_at_mut(src.max(dst));
            let (src_shard, dst_shard) = if src < dst {
                (&mut lo[src], &mut hi[0])
            } else {
                (&mut hi[0], &mut lo[dst])
            };
            if self.config.parallelism.width() > 1 {
                std::thread::scope(|scope| {
                    let handle = scope.spawn(|| {
                        src_shard.apply(t, &depart, window);
                    });
                    let assigned = dst_shard.apply(t, &arrive, window);
                    handle.join().expect("source-shard worker panicked");
                    assigned
                })
            } else {
                src_shard.apply(t, &depart, window);
                dst_shard.apply(t, &arrive, window)
            }
        };
        let new_id = assigned[0];
        let victim_workload = Workload::from_ids([victim_model]);
        let transfer = MigrationModel::new(self.shards[dst].platform)
            .full_restage(&victim_workload)
            .stall_seconds;
        self.shards[dst].session.charge_stall(transfer);
        if let Some(entry) = requests.values_mut().find(|d| {
            matches!(d, Disposition::Active { shard, instance }
                     if *shard == src && *instance == victim_id)
        }) {
            *entry = Disposition::Active { shard: dst, instance: new_id };
        }
        Some((src, dst))
    }
}
