//! The incremental shard-state index behind
//! [`crate::FleetConfig::indexed_placement`]: sublinear admission probing
//! and an O(log S) health read, bit-identical to the full scans.
//!
//! Two structures, both maintained lazily from per-shard epoch counters
//! (every [`Shard::apply`], every lane retire — `Shard::commit` bumps
//! the epoch exactly like the direct apply it stands in for, so applies
//! prepared out of order under `apply_lanes` refile identically — and
//! `mark_down` bumps the epoch, so a refresh only recomputes the handful
//! of shards an event actually touched):
//!
//! - **Placement classes.** Every *up* shard is filed under a byte key
//!   pinning all inputs of `build_probe`: platform group, throttle bits,
//!   live model ids in live order, and per-instance placements. Two
//!   shards with equal keys are asked the *identical* oracle question and
//!   fold to bit-identical `(delta, arrival_pot)` scores — so the probe
//!   fan-out builds one probe per **class representative** (the lowest
//!   member index, honoring the caller's exclusion) and broadcasts its
//!   score to the rest of the class. In a large fleet most shards are
//!   idle or carry one of a few popular live sets, so probe work scales
//!   with the number of *distinct shard states*, not the shard count.
//!   Class keys never include the mapper's priority mode: the executor
//!   only ever changes mode through a fleet-wide `SetPriorities`
//!   broadcast, so the mode is uniform across shards by construction.
//! - **Health order.** Shards eligible for the rebalancer/overload-guard
//!   scan (up, ≥ 2 live instances) are kept in a `BTreeSet` ordered by
//!   `(mean_potential as order-preserving bits, shard index)`; its first
//!   element *is* the `min_by(total_cmp)` answer of the full scan —
//!   including the first-minimal tie-break on shard index — read in
//!   O(log S) instead of one oracle prediction per shard per event.
//!
//! Scores are computed by the unchanged fused/serial scoring machinery
//! and the unchanged downstream argmax/argmin selection code, so every
//! tie-break (first-max admission, last-max rebalance destination) is
//! preserved automatically; `crates/fleet/tests/indexed.rs` property-tests
//! decision bit-identity against full-scan mode.

use crate::shard::Shard;
use rankmap_core::oracle::ThroughputOracle;
use std::collections::{BTreeMap, BTreeSet};

/// Maps an `f64` to bits whose unsigned order equals `f64::total_cmp`
/// order (sign-folded IEEE trick: negatives reverse, positives shift
/// above them — `-0.0` still sorts before `+0.0`).
fn ordered_bits(v: f64) -> u64 {
    let b = v.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// The incremental index: placement equivalence classes + health order.
/// See the module docs for the design and the bit-identity argument.
pub(crate) struct PlacementIndex {
    /// Class key → member shards, ordered (deterministic iteration).
    classes: BTreeMap<Vec<u8>, BTreeSet<usize>>,
    /// Per-shard current class key (`None` = down, unfiled).
    shard_key: Vec<Option<Vec<u8>>>,
    /// `(ordered_bits(mean), shard)` for every health-eligible shard;
    /// the first element is the worst loaded shard.
    health: BTreeSet<(u64, usize)>,
    /// Per-shard health entry backing `health` (`bits` for removal, the
    /// raw mean for callers).
    health_val: Vec<Option<(u64, f64)>>,
    /// Last shard epoch folded into the index (`None` = never seen).
    seen_epoch: Vec<Option<u64>>,
}

impl PlacementIndex {
    /// An empty index over `shards` shards; the first `refresh` files
    /// everything.
    pub(crate) fn new(shards: usize) -> Self {
        Self {
            classes: BTreeMap::new(),
            shard_key: vec![None; shards],
            health: BTreeSet::new(),
            health_val: vec![None; shards],
            seen_epoch: vec![None; shards],
        }
    }

    /// Folds every shard whose epoch moved since the last refresh back
    /// into both structures. Runs serially at the event barrier — the
    /// sweep is a cheap integer compare per untouched shard, and an event
    /// only ever touches a handful of shards. Returns how many shards
    /// were refiled (telemetry's `fleet_index_refiled_total`; the count
    /// plays no part in any decision).
    pub(crate) fn refresh<O: ThroughputOracle>(
        &mut self,
        shards: &mut [Shard<'_, O>],
    ) -> usize {
        let mut refiled = 0;
        for (s, shard) in shards.iter_mut().enumerate() {
            if self.seen_epoch[s] == Some(shard.epoch()) {
                continue;
            }
            refiled += 1;
            self.seen_epoch[s] = Some(shard.epoch());
            let new_key = shard.placement_class_key();
            if new_key != self.shard_key[s] {
                if let Some(old) = self.shard_key[s].take() {
                    if let Some(members) = self.classes.get_mut(&old) {
                        members.remove(&s);
                        if members.is_empty() {
                            self.classes.remove(&old);
                        }
                    }
                }
                if let Some(key) = &new_key {
                    self.classes.entry(key.clone()).or_default().insert(s);
                }
                self.shard_key[s] = new_key;
            }
            let eligible = !shard.is_down() && shard.live_len() >= 2;
            let entry = eligible
                .then(|| shard.mean_potential())
                .flatten()
                .map(|v| (ordered_bits(v), v));
            if entry.map(|(b, _)| b) != self.health_val[s].map(|(b, _)| b) {
                if let Some((old_bits, _)) = self.health_val[s] {
                    self.health.remove(&(old_bits, s));
                }
                if let Some((bits, _)) = entry {
                    self.health.insert((bits, s));
                }
            }
            self.health_val[s] = entry;
        }
        refiled
    }

    /// `mask[s]` iff shard `s` is its class's representative — the lowest
    /// member index not named by `exclude`. A class whose only member is
    /// excluded fields no probe (exactly the full scan's behavior: the
    /// excluded shard is skipped, and no other shard shares its state).
    pub(crate) fn representative_mask(&self, exclude: Option<usize>) -> Vec<bool> {
        let mut mask = vec![false; self.shard_key.len()];
        for members in self.classes.values() {
            if let Some(&rep) = members.iter().find(|&&m| Some(m) != exclude) {
                mask[rep] = true;
            }
        }
        mask
    }

    /// Copies each representative's score onto the rest of its class
    /// (skipping `exclude`). `None` broadcasts too: a capacity-full
    /// representative speaks for its equally-full classmates. Returns
    /// how many scores were copied — probe evaluations the class
    /// structure saved (telemetry only; no decision reads it).
    pub(crate) fn broadcast(
        &self,
        exclude: Option<usize>,
        scores: &mut [Option<(f64, f64)>],
    ) -> usize {
        let mut copied = 0;
        for members in self.classes.values() {
            let mut live = members.iter().filter(|&&m| Some(m) != exclude);
            let Some(&rep) = live.next() else { continue };
            let score = scores[rep];
            for &m in live {
                scores[m] = score;
                copied += 1;
            }
        }
        copied
    }

    /// The worst loaded shard `(index, mean potential)` — the health
    /// scan's `min_by(total_cmp)` answer (first-minimal on ties), read
    /// from the order's front.
    pub(crate) fn worst(&self) -> Option<(usize, f64)> {
        let &(bits, s) = self.health.iter().next()?;
        let (stored, mean) = self.health_val[s].expect("health entry backed by health_val");
        debug_assert_eq!(stored, bits);
        Some((s, mean))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_bits_matches_total_cmp() {
        let samples = [
            f64::NEG_INFINITY,
            -1.5,
            -0.0,
            0.0,
            1.0e-300,
            0.3,
            1.0,
            f64::INFINITY,
        ];
        for &a in &samples {
            for &b in &samples {
                assert_eq!(
                    ordered_bits(a).cmp(&ordered_bits(b)),
                    a.total_cmp(&b),
                    "{a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn negative_zero_sorts_before_positive_zero() {
        assert!(ordered_bits(-0.0) < ordered_bits(0.0));
    }
}
