//! Fleet-level observability: deterministic run metrics, the placement
//! log, and wall-clock placement latency.
//!
//! [`FleetMetrics`] and the [`PlacementRecord`] log are pure functions of
//! the offered event stream and the fleet configuration — replaying a
//! recorded trace reproduces them bit-for-bit (`tests/replay.rs`).
//! [`LatencyStats`] is the one wall-clock measurement (how long the
//! admission/placement decision itself takes) and is deliberately kept
//! *outside* [`FleetMetrics`] so determinism checks never compare clocks.

use crate::load::RequestId;
use std::time::Duration;

/// Where an offered request ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementOutcome {
    /// Admitted onto the given shard.
    Admitted {
        /// Index of the shard that took the instance.
        shard: usize,
    },
    /// Rejected: no shard had capacity and predicted headroom.
    Rejected,
}

/// One admission/placement decision, in offered order.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementRecord {
    /// The request this decision answered.
    pub request: RequestId,
    /// Decision time (the arrival time), seconds.
    pub at: f64,
    /// The outcome.
    pub outcome: PlacementOutcome,
    /// Predicted fleet-potential delta of the chosen shard (0 when
    /// rejected): the score the placement layer maximized.
    pub predicted_delta: f64,
}

/// Deterministic aggregate metrics of one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetMetrics {
    /// Number of device shards.
    pub shards: usize,
    /// Requests offered (arrivals in the event stream).
    pub offered: u64,
    /// Requests admitted onto some shard.
    pub admitted: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Cross-shard rebalancing migrations performed.
    pub migrations: u64,
    /// Span-weighted timeline-average potential per shard (see
    /// `rankmap_core::runtime::timeline_average_potential`).
    pub per_shard_potential: Vec<f64>,
    /// Requests admitted per shard (including rebalance arrivals).
    pub per_shard_admitted: Vec<u64>,
    /// Platform name of each shard, in shard order — on a heterogeneous
    /// fleet this is the key for reading the per-shard columns (which
    /// rows are Orange Pis, which are Jetsons).
    pub per_shard_platform: Vec<String>,
    /// Aggregate fleet potential: Σ over shards, timeline points, and
    /// running DNNs of `potential · span` — potential-seconds of useful
    /// service. This is the `fleet_scale` bench's scaling figure.
    pub aggregate_potential_seconds: f64,
}

/// Wall-clock latency distribution of the placement decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyStats {
    /// Number of measured decisions.
    pub samples: usize,
    /// Median.
    pub p50: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Worst case.
    pub max: Duration,
    /// Sum over all decisions — what a whole run spent deciding
    /// placements (the `fleet_hetero` bench's fused-vs-serial figure).
    pub total: Duration,
}

impl LatencyStats {
    /// Summarizes a set of measured durations (empty → all zeros).
    pub fn from_durations(mut samples: Vec<Duration>) -> Self {
        if samples.is_empty() {
            return Self {
                samples: 0,
                p50: Duration::ZERO,
                p99: Duration::ZERO,
                max: Duration::ZERO,
                total: Duration::ZERO,
            };
        }
        samples.sort_unstable();
        let q = |p: usize| samples[(samples.len() - 1) * p / 100];
        Self {
            samples: samples.len(),
            p50: q(50),
            p99: q(99),
            max: *samples.last().unwrap(),
            total: samples.iter().sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_quantiles_are_order_statistics() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        let stats = LatencyStats::from_durations(samples);
        assert_eq!(stats.samples, 100);
        assert_eq!(stats.p50, Duration::from_micros(50));
        assert_eq!(stats.p99, Duration::from_micros(99));
        assert_eq!(stats.max, Duration::from_micros(100));
        assert_eq!(stats.total, Duration::from_micros(5050));
    }

    #[test]
    fn empty_latency_is_zeroed() {
        let stats = LatencyStats::from_durations(Vec::new());
        assert_eq!(stats.samples, 0);
        assert_eq!(stats.max, Duration::ZERO);
    }
}
