//! Fleet-level observability: deterministic run metrics, the placement
//! log, and wall-clock placement latency.
//!
//! [`FleetMetrics`] and the [`PlacementRecord`] log are pure functions of
//! the offered event stream and the fleet configuration — replaying a
//! recorded trace reproduces them bit-for-bit (`tests/replay.rs`).
//! [`LatencyStats`] is the one wall-clock measurement (how long the
//! admission/placement decision itself takes) and is deliberately kept
//! *outside* [`FleetMetrics`] so determinism checks never compare clocks.

use crate::load::RequestId;
use rankmap_telemetry::Histogram;
use std::time::Duration;

/// Where an offered request ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementOutcome {
    /// Admitted onto the given shard.
    Admitted {
        /// Index of the shard that took the instance.
        shard: usize,
    },
    /// Rejected: no shard had capacity and predicted headroom (and no
    /// retries remained).
    Rejected,
    /// Rejected at this attempt, with a deterministic backoff retry
    /// scheduled (see [`crate::FleetConfig::retry_limit`]).
    Deferred,
    /// Evacuated off a failing shard onto a survivor, in priority order.
    Evacuated {
        /// The failed shard the instance was running on.
        from: usize,
        /// The surviving shard that absorbed it.
        to: usize,
    },
    /// Dropped while live: the shard failed with no survivor able to
    /// absorb it, or the overload guard shed it.
    Shed {
        /// The shard the instance was running on when it was dropped.
        from: usize,
    },
}

/// One admission/placement decision, in offered order.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementRecord {
    /// The request this decision answered.
    pub request: RequestId,
    /// Decision time (the arrival time), seconds.
    pub at: f64,
    /// The outcome.
    pub outcome: PlacementOutcome,
    /// Predicted fleet-potential delta of the chosen shard (0 when
    /// rejected): the score the placement layer maximized.
    pub predicted_delta: f64,
}

/// Deterministic aggregate metrics of one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetMetrics {
    /// Number of device shards.
    pub shards: usize,
    /// Requests offered (arrivals in the event stream).
    pub offered: u64,
    /// Requests admitted onto some shard.
    pub admitted: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Cross-shard rebalancing migrations performed.
    pub migrations: u64,
    /// Span-weighted timeline-average potential per shard (see
    /// `rankmap_core::runtime::timeline_average_potential`).
    pub per_shard_potential: Vec<f64>,
    /// Requests admitted per shard (including rebalance arrivals).
    pub per_shard_admitted: Vec<u64>,
    /// Platform name of each shard, in shard order — on a heterogeneous
    /// fleet this is the key for reading the per-shard columns (which
    /// rows are Orange Pis, which are Jetsons).
    pub per_shard_platform: Vec<String>,
    /// Aggregate fleet potential: Σ over shards, timeline points, and
    /// running DNNs of `potential · span` — potential-seconds of useful
    /// service. This is the `fleet_scale` bench's scaling figure.
    pub aggregate_potential_seconds: f64,
    /// Shard outages applied (a [`crate::FleetEvent::ShardDown`] on an
    /// already-down shard is an idempotent no-op and not counted).
    pub failures_injected: u64,
    /// Throttle changes applied to up shards (restores included).
    pub throttle_events: u64,
    /// Live instances moved off failing shards onto survivors.
    pub evacuated: u64,
    /// Live instances dropped: shard failures no survivor could absorb,
    /// plus overload-guard sheds.
    pub shed: u64,
    /// Retry attempts re-enqueued after rejections (bounded per request
    /// by [`crate::FleetConfig::retry_limit`]).
    pub retries: u64,
    /// Requests admitted on a retry attempt (a subset of `admitted`).
    pub retry_admitted: u64,
    /// Simulated stall seconds charged to destination boards by
    /// evacuation restages (the migration model's full-restage cost —
    /// deterministic, unlike the wall-clock evacuation latency on
    /// [`crate::FleetOutcome`]).
    pub evacuation_stall_seconds: f64,
    /// Admitted instances that departed normally.
    pub departed: u64,
    /// Admitted instances still live at the horizon.
    pub live_at_end: u64,
    /// Instances triaged at shard failures, by priority tier
    /// `[high, mid, low]` (terciles of the failing shard's priority
    /// order).
    pub tier_triaged: [u64; 3],
    /// Triaged instances that survived by evacuation, by tier.
    pub tier_evacuated: [u64; 3],
}

impl FleetMetrics {
    /// Per-priority-tier availability under failures: the fraction of
    /// triaged instances each tier kept alive through evacuation
    /// (`[high, mid, low]`; a tier never triaged reports `1.0` — nothing
    /// was at risk). Priority-aware triage makes this vector
    /// non-increasing in expectation: high priority evacuates first,
    /// while sheds land on the low tier.
    pub fn tier_availability(&self) -> [f64; 3] {
        let mut out = [1.0; 3];
        for (i, slot) in out.iter_mut().enumerate() {
            if self.tier_triaged[i] > 0 {
                *slot = self.tier_evacuated[i] as f64 / self.tier_triaged[i] as f64;
            }
        }
        out
    }

    /// The instance-accounting invariant under chaos: every admitted
    /// instance ends in exactly one terminal state — departed, still
    /// live (evacuated instances stay live on their new shard), or shed.
    /// Property-tested across seeds × load shapes × fault schedules in
    /// `tests/chaos.rs`.
    pub fn accounting_balances(&self) -> bool {
        self.admitted == self.departed + self.live_at_end + self.shed
            && self.offered == self.admitted + self.rejected
    }
}

/// Wall-clock latency distribution of the placement decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyStats {
    /// Number of measured decisions.
    pub samples: usize,
    /// Median.
    pub p50: Duration,
    /// 90th percentile.
    pub p90: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Worst case.
    pub max: Duration,
    /// Sum over all decisions — what a whole run spent deciding
    /// placements (the `fleet_hetero` bench's fused-vs-serial figure).
    pub total: Duration,
}

impl LatencyStats {
    /// Summarizes a set of measured durations. Zero samples — e.g. a
    /// fully-failed fleet that never reached a placement decision —
    /// report all-zero stats rather than panicking.
    pub fn from_durations(mut samples: Vec<Duration>) -> Self {
        samples.sort_unstable();
        let q = |p: usize| {
            samples
                .get((samples.len().saturating_sub(1)) * p / 100)
                .copied()
                .unwrap_or(Duration::ZERO)
        };
        Self {
            samples: samples.len(),
            p50: q(50),
            p90: q(90),
            p99: q(99),
            max: samples.last().copied().unwrap_or(Duration::ZERO),
            total: samples.iter().sum(),
        }
    }

    /// Summarizes a telemetry [`Histogram`] of seconds — the executor's
    /// memory-bounded path: latencies feed the histogram incrementally
    /// (O(distinct buckets) state, not O(samples)), and the quantiles
    /// here are the histogram's deterministic bucket representatives
    /// (within one sub-bucket, ≈ 3%, of the exact order statistics that
    /// [`LatencyStats::from_durations`] would report). `max` stays
    /// exact; `total` is the bucket-derived approximate sum.
    pub fn from_histogram(h: &Histogram) -> Self {
        let d = |v: Option<f64>| Duration::from_secs_f64(v.unwrap_or(0.0).max(0.0));
        Self {
            samples: h.count() as usize,
            p50: d(h.percentile(50)),
            p90: d(h.percentile(90)),
            p99: d(h.percentile(99)),
            max: d(h.max()),
            total: d(Some(h.approx_sum())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_quantiles_are_order_statistics() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        let stats = LatencyStats::from_durations(samples);
        assert_eq!(stats.samples, 100);
        assert_eq!(stats.p50, Duration::from_micros(50));
        assert_eq!(stats.p90, Duration::from_micros(90));
        assert_eq!(stats.p99, Duration::from_micros(99));
        assert_eq!(stats.max, Duration::from_micros(100));
        assert_eq!(stats.total, Duration::from_micros(5050));
    }

    #[test]
    fn histogram_stats_approximate_the_order_statistics() {
        let mut h = Histogram::new();
        for us in 1..=100u64 {
            h.record(us as f64 * 1e-6);
        }
        let stats = LatencyStats::from_histogram(&h);
        assert_eq!(stats.samples, 100);
        // Quantiles are bucket representatives: within ≈4% of exact.
        let close = |got: Duration, exact_us: u64| {
            let exact = exact_us as f64 * 1e-6;
            (got.as_secs_f64() - exact).abs() / exact < 0.04
        };
        assert!(close(stats.p50, 50), "p50 {:?}", stats.p50);
        assert!(close(stats.p90, 90), "p90 {:?}", stats.p90);
        assert!(close(stats.p99, 99), "p99 {:?}", stats.p99);
        // The maximum is exact, not quantized.
        assert_eq!(stats.max, Duration::from_micros(100));
        assert!(close(stats.total, 5050), "total {:?}", stats.total);
    }

    #[test]
    fn empty_histogram_stats_are_zeroed() {
        let stats = LatencyStats::from_histogram(&Histogram::new());
        assert_eq!(stats.samples, 0);
        assert_eq!(stats.p50, Duration::ZERO);
        assert_eq!(stats.max, Duration::ZERO);
        assert_eq!(stats.total, Duration::ZERO);
    }

    #[test]
    fn empty_latency_is_zeroed() {
        let stats = LatencyStats::from_durations(Vec::new());
        assert_eq!(stats.samples, 0);
        assert_eq!(stats.max, Duration::ZERO);
    }
}
