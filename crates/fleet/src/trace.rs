//! JSONL trace record/replay: a fleet run reproducible bit-for-bit from a
//! file.
//!
//! A trace is the *input* side of a fleet run — the offered event stream
//! plus the run's shape (shard count, horizon, seed) — written one JSON
//! object per line. Replaying a trace through a [`crate::FleetRuntime`]
//! with the same configuration reproduces the identical placement log and
//! [`crate::FleetMetrics`], because everything downstream of the events
//! is deterministic (tested in `tests/replay.rs`).
//!
//! Timestamps and priority vectors are written with Rust's
//! shortest-roundtrip float formatting, which parses back to the exact
//! bits — no bit-pattern encoding needed for finite values.
//!
//! Format (`version 3`; version-1 and version-2 traces still parse):
//!
//! ```text
//! {"horizon":600,"label":"bursty","platforms":["orange-pi-5","jetson-orin-nx"],"rankmap_fleet_trace":3,"seed":"7","shards":2}
//! {"at":12.25,"kind":"arrive","model":"AlexNet","request":0}
//! {"at":80.5,"kind":"depart","request":0}
//! {"at":90,"kind":"set_priorities","mode":"dynamic"}
//! {"at":95,"kind":"set_priorities","mode":"static","priorities":[0.7,0.3]}
//! {"at":120,"kind":"shard_down","shard":1}
//! {"at":150,"kind":"shard_throttle","factor":0.55,"shard":0}
//! {"at":240,"kind":"shard_up","shard":1}
//! ```
//!
//! Version 2 adds the `platforms` header field: the per-shard platform
//! names of the fleet the trace was recorded on, in shard order. A
//! heterogeneous replay
//! ([`FleetRuntime::execute_trace`](crate::FleetRuntime::execute_trace))
//! verifies the replaying fleet has the identical mix — a trace recorded
//! on `[orange, jetson]` must not silently replay on `[jetson, orange]`,
//! where every shard index means a different board. An empty or absent
//! `platforms` list (all version-1 traces) skips the check.
//!
//! Version 3 adds the fault event kinds `shard_down`, `shard_up`, and
//! `shard_throttle` (see [`crate::FaultSpec`]), so an injected failure
//! schedule replays with the rest of the stream. A trace without fault
//! events is written with a version-2 header — every pre-chaos trace file
//! re-serializes byte-identically — and a fault event in a version-1 or
//! version-2 trace is rejected at parse time: those versions never
//! defined the kinds, so their presence means a mislabeled file. Fault
//! shard indices are validated against the header's shard count and
//! throttle factors against `(0, 1]`, again so a hand-edited trace fails
//! here with a line number and snippet rather than on an executor assert.
//!
//! The mix is pinned by *name*, a readable guard against the common
//! mistake (wrong fleet composition). It deliberately does not pin the
//! boards' capability numbers: bit-identical replay already assumes the
//! same build of the simulator and presets, and under that assumption a
//! name implies its numbers. Artifacts that must survive recalibration
//! use the strict [`Platform::signature`](rankmap_platform::Platform::signature)
//! instead (see the plan cache).

use crate::load::{FleetEvent, RequestId};
use rankmap_core::json::{self, obj, Json};
use rankmap_core::priority::PriorityMode;
use rankmap_models::ModelId;
use std::str::FromStr;

/// The run shape a trace pins down.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMeta {
    /// Number of device shards the run used.
    pub shards: usize,
    /// Run horizon in seconds.
    pub horizon: f64,
    /// The load seed (informational — the events are already expanded).
    pub seed: u64,
    /// Free-form label ("bursty-8shard", ...).
    pub label: String,
    /// Per-shard platform names of the recording fleet, in shard order
    /// (version 2). Empty for version-1 traces or homogeneous runs that
    /// do not care; when non-empty, replay verifies the fleet mix
    /// matches and `platforms.len()` must equal `shards`.
    pub platforms: Vec<String>,
}

impl TraceMeta {
    /// Metadata for a run that does not pin a platform mix (the
    /// pre-heterogeneity shape: shard count, horizon, seed, label).
    pub fn new(shards: usize, horizon: f64, seed: u64, label: impl Into<String>) -> Self {
        Self { shards, horizon, seed, label: label.into(), platforms: Vec::new() }
    }

    /// Pins the per-shard platform mix this trace was recorded on (e.g.
    /// [`FleetRuntime::platform_names`](crate::FleetRuntime::platform_names)).
    ///
    /// # Panics
    ///
    /// Panics if `platforms` is non-empty and its length differs from
    /// the shard count.
    #[must_use]
    pub fn with_platforms(mut self, platforms: Vec<String>) -> Self {
        assert!(
            platforms.is_empty() || platforms.len() == self.shards,
            "one platform name per shard"
        );
        self.platforms = platforms;
        self
    }
}

/// A recorded fleet run input: meta + the offered event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Run shape.
    pub meta: TraceMeta,
    /// Offered events, sorted by time.
    pub events: Vec<FleetEvent>,
}

/// A malformed trace line, carrying the line number *and* a snippet of
/// the offending text — enough to find and fix a bad line in a
/// multi-megabyte hand-edited trace without opening it at the right
/// offset first.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong.
    pub message: String,
    /// The offending line's text, truncated to
    /// [`TraceError::SNIPPET_LIMIT`] characters.
    pub snippet: String,
}

impl TraceError {
    /// Maximum characters of the offending line kept in
    /// [`TraceError::snippet`].
    pub const SNIPPET_LIMIT: usize = 120;

    fn new(line: usize, message: String, raw: &str) -> Self {
        let mut snippet: String = raw.chars().take(Self::SNIPPET_LIMIT).collect();
        if snippet.len() < raw.len() {
            snippet.push('…');
        }
        Self { line, message, snippet }
    }
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)?;
        if !self.snippet.is_empty() {
            write!(f, " in `{}`", self.snippet)?;
        }
        Ok(())
    }
}

impl std::error::Error for TraceError {}

fn mode_json(mode: &PriorityMode, line: &mut std::collections::BTreeMap<String, Json>) {
    match mode {
        PriorityMode::Dynamic => {
            line.insert("mode".into(), Json::Str("dynamic".into()));
        }
        PriorityMode::Static(p) => {
            line.insert("mode".into(), Json::Str("static".into()));
            line.insert(
                "priorities".into(),
                Json::Arr(p.iter().map(|&v| Json::Num(v)).collect()),
            );
        }
    }
}

/// One event's JSONL object — the single source of truth for the
/// on-disk event encoding ([`Trace::to_jsonl`] and [`TraceWriter`] both
/// serialize through here, so the streamed and eager formats cannot
/// drift).
fn event_json(event: &FleetEvent) -> Json {
    let mut line = std::collections::BTreeMap::new();
    line.insert("at".into(), Json::Num(event.at()));
    match event {
        FleetEvent::Arrive { request, model, .. } => {
            line.insert("kind".into(), Json::Str("arrive".into()));
            line.insert("request".into(), Json::Num(request.ordinal() as f64));
            line.insert("model".into(), Json::Str(model.name().into()));
        }
        FleetEvent::Depart { request, .. } => {
            line.insert("kind".into(), Json::Str("depart".into()));
            line.insert("request".into(), Json::Num(request.ordinal() as f64));
        }
        FleetEvent::SetPriorities { mode, .. } => {
            line.insert("kind".into(), Json::Str("set_priorities".into()));
            mode_json(mode, &mut line);
        }
        FleetEvent::ShardDown { shard, .. } => {
            line.insert("kind".into(), Json::Str("shard_down".into()));
            line.insert("shard".into(), Json::Num(*shard as f64));
        }
        FleetEvent::ShardUp { shard, .. } => {
            line.insert("kind".into(), Json::Str("shard_up".into()));
            line.insert("shard".into(), Json::Num(*shard as f64));
        }
        FleetEvent::ShardThrottle { shard, factor, .. } => {
            line.insert("kind".into(), Json::Str("shard_throttle".into()));
            line.insert("shard".into(), Json::Num(*shard as f64));
            line.insert("factor".into(), Json::Num(*factor));
        }
    }
    Json::Obj(line)
}

/// Whether an event is one of the version-3 fault kinds.
fn is_fault(event: &FleetEvent) -> bool {
    matches!(
        event,
        FleetEvent::ShardDown { .. }
            | FleetEvent::ShardUp { .. }
            | FleetEvent::ShardThrottle { .. }
    )
}

/// Streams a trace to any [`std::io::Write`] sink one event at a time —
/// the recording twin of [`crate::LoadStream`]. Where [`Trace::to_jsonl`]
/// needs the whole event vector in memory, the writer emits each line as
/// it is handed the event (an incremental flush: wrap the sink in a
/// `BufWriter` for file-backed recording at million-event scale) and
/// produces **byte-identical** output — `to_jsonl` is itself implemented
/// over a `TraceWriter` draining into a `Vec<u8>`.
///
/// The format version is a *caller-declared* hint: a streaming writer
/// cannot scan ahead for fault events the way `to_jsonl` does, so
/// [`TraceWriter::new`] takes `has_faults` and writes a version-3 header
/// when true, version 2 otherwise (keeping every fault-free trace
/// byte-identical to the pre-chaos format). Handing a fault event to a
/// version-2 writer is an [`std::io::ErrorKind::InvalidInput`] error —
/// the mislabeled file is refused at write time, mirroring the parser's
/// version check. Declaring `has_faults` for a stream that ends up
/// fault-free is harmless (version-3 headers accept fault-free streams)
/// but no longer matches `to_jsonl`'s auto-detected header byte-for-byte.
///
/// # Example
///
/// ```
/// use rankmap_fleet::{LoadSpec, LoadStream, TraceMeta, TraceWriter};
///
/// let spec = LoadSpec { horizon: 120.0, ..Default::default() };
/// let meta = TraceMeta::new(4, spec.horizon, spec.seed, "streamed");
/// let mut writer = TraceWriter::new(Vec::new(), &meta, spec.faults.is_some()).unwrap();
/// for event in LoadStream::new(&spec) {
///     writer.write_event(&event).unwrap();
/// }
/// let jsonl = String::from_utf8(writer.finish().unwrap()).unwrap();
/// assert!(jsonl.lines().next().unwrap().contains("rankmap_fleet_trace"));
/// ```
pub struct TraceWriter<W: std::io::Write> {
    sink: W,
    version: u64,
    events_written: u64,
}

impl<W: std::io::Write> TraceWriter<W> {
    /// Writes the header line and returns the streaming writer.
    /// `has_faults` declares the format version up front (see the type
    /// docs); pass `spec.faults.is_some()` when recording a generated
    /// load.
    pub fn new(mut sink: W, meta: &TraceMeta, has_faults: bool) -> std::io::Result<Self> {
        let version = if has_faults { 3u64 } else { 2 };
        let header = obj([
            ("rankmap_fleet_trace", Json::Num(version as f64)),
            ("shards", Json::Num(meta.shards as f64)),
            ("horizon", Json::Num(meta.horizon)),
            // Written as a string: a u64 seed (e.g. hash-derived) can
            // exceed 2^53 and would not survive a JSON number.
            ("seed", Json::Str(meta.seed.to_string())),
            ("label", Json::Str(meta.label.clone())),
            (
                "platforms",
                Json::Arr(meta.platforms.iter().map(|p| Json::Str(p.clone())).collect()),
            ),
        ]);
        sink.write_all(header.to_string().as_bytes())?;
        sink.write_all(b"\n")?;
        Ok(Self { sink, version, events_written: 0 })
    }

    /// Appends one event line to the sink. Fault events under a
    /// version-2 header are refused with
    /// [`std::io::ErrorKind::InvalidInput`].
    pub fn write_event(&mut self, event: &FleetEvent) -> std::io::Result<()> {
        if self.version < 3 && is_fault(event) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "fault event at {} in a version-{} trace \
                     (construct the writer with has_faults = true)",
                    event.at(),
                    self.version
                ),
            ));
        }
        self.sink.write_all(event_json(event).to_string().as_bytes())?;
        self.sink.write_all(b"\n")?;
        self.events_written += 1;
        Ok(())
    }

    /// Events written so far (excluding the header line).
    pub fn events_written(&self) -> u64 {
        self.events_written
    }

    /// Flushes and returns the sink.
    pub fn finish(mut self) -> std::io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

impl Trace {
    /// Pairs a generated (or hand-built) event stream with its run shape.
    pub fn new(meta: TraceMeta, events: Vec<FleetEvent>) -> Self {
        Self { meta, events }
    }

    /// Serializes to JSONL: one header line, one line per event. The
    /// header declares version 3 only when the stream carries fault
    /// events; a fault-free trace stays byte-identical to the version-2
    /// format. Implemented over [`TraceWriter`] (draining into a
    /// `Vec<u8>`), so the eager and streaming serializations are the
    /// same code path.
    pub fn to_jsonl(&self) -> String {
        let has_faults = self.events.iter().any(is_fault);
        let mut writer = TraceWriter::new(Vec::new(), &self.meta, has_faults)
            .expect("writing to a Vec cannot fail");
        for event in &self.events {
            writer.write_event(event).expect("writing to a Vec cannot fail");
        }
        String::from_utf8(writer.finish().expect("writing to a Vec cannot fail"))
            .expect("JSONL output is UTF-8")
    }

    /// Parses a [`Trace::to_jsonl`] stream. Blank lines are ignored;
    /// out-of-order event timestamps and events outside `[0, horizon)`
    /// are rejected (the fleet runtime requires a sorted in-horizon
    /// stream, and a hand-edited trace should fail here with a line
    /// number, not on an assert at execute time).
    pub fn from_jsonl(text: &str) -> Result<Self, TraceError> {
        let mut meta = None;
        let mut version = 0u64;
        let mut events = Vec::new();
        let mut arrived = std::collections::HashSet::new();
        let mut departed = std::collections::HashSet::new();
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            let bad = |message: String| TraceError::new(lineno, message, line);
            let value =
                json::parse(line).map_err(|e| bad(format!("invalid JSON: {e}")))?;
            if meta.is_none() {
                version = match value.get("rankmap_fleet_trace").and_then(Json::as_u64) {
                    Some(v @ 1..=3) => v,
                    _ => {
                        return Err(bad(
                            "first line must be a version-1, -2, or -3 trace header".into(),
                        ))
                    }
                };
                let shards = value
                    .get("shards")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("header missing shards".into()))?
                    as usize;
                // Version 2's platform mix; absent (version 1) means
                // unspecified, which replay treats as "don't check".
                let platforms = match value.get("platforms") {
                    None | Some(Json::Null) => Vec::new(),
                    Some(v) => v
                        .as_arr()
                        .and_then(|names| {
                            names
                                .iter()
                                .map(|n| n.as_str().map(str::to_string))
                                .collect::<Option<Vec<String>>>()
                        })
                        .ok_or_else(|| {
                            bad("platforms must be an array of platform names".into())
                        })?,
                };
                if !platforms.is_empty() && platforms.len() != shards {
                    return Err(bad(format!(
                        "header declares {} platforms for {} shards",
                        platforms.len(),
                        shards
                    )));
                }
                meta = Some(TraceMeta {
                    shards,
                    horizon: value
                        .get("horizon")
                        .and_then(Json::as_f64)
                        .filter(|h| *h > 0.0)
                        .ok_or_else(|| bad("header missing a positive horizon".into()))?,
                    seed: value
                        .get("seed")
                        .and_then(|v| match v {
                            Json::Str(s) => s.parse().ok(),
                            other => other.as_u64(),
                        })
                        .ok_or_else(|| bad("header missing seed".into()))?,
                    label: value
                        .get("label")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    platforms,
                });
                continue;
            }
            let at = value
                .get("at")
                .and_then(Json::as_f64)
                .ok_or_else(|| bad("event missing at".into()))?;
            if events.last().is_some_and(|prev: &FleetEvent| at < prev.at()) {
                return Err(bad(format!(
                    "events out of order: {} after {}",
                    at,
                    events.last().map(FleetEvent::at).unwrap_or(0.0)
                )));
            }
            let horizon = meta.as_ref().map(|m: &TraceMeta| m.horizon).unwrap_or(f64::MAX);
            if !(0.0..horizon).contains(&at) {
                return Err(bad(format!(
                    "event at {at} outside the trace horizon [0, {horizon})"
                )));
            }
            let request = || {
                value
                    .get("request")
                    .and_then(Json::as_u64)
                    .map(RequestId::new)
                    .ok_or_else(|| bad("event missing request".into()))
            };
            let event = match value.get("kind").and_then(Json::as_str) {
                Some("arrive") => {
                    let name = value
                        .get("model")
                        .and_then(Json::as_str)
                        .ok_or_else(|| bad("arrive missing model".into()))?;
                    let model = ModelId::from_str(name)
                        .map_err(|_| bad(format!("unknown model '{name}'")))?;
                    let request = request()?;
                    if !arrived.insert(request) {
                        return Err(bad(format!("request {request} arrives twice")));
                    }
                    FleetEvent::Arrive { at, request, model }
                }
                Some("depart") => {
                    let request = request()?;
                    if !arrived.contains(&request) {
                        return Err(bad(format!("request {request} departs before arriving")));
                    }
                    if !departed.insert(request) {
                        return Err(bad(format!("request {request} departs twice")));
                    }
                    FleetEvent::Depart { at, request }
                }
                Some(kind @ ("shard_down" | "shard_up" | "shard_throttle")) => {
                    if version < 3 {
                        return Err(bad(format!(
                            "fault event '{kind}' in a version-{version} trace \
                             (faults need a version-3 header)"
                        )));
                    }
                    let shards = meta.as_ref().map(|m: &TraceMeta| m.shards).unwrap_or(0);
                    let shard = value
                        .get("shard")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad(format!("{kind} missing shard")))?
                        as usize;
                    if shard >= shards {
                        return Err(bad(format!(
                            "{kind} names shard {shard} but the header declares \
                             {shards} shards"
                        )));
                    }
                    match kind {
                        "shard_down" => FleetEvent::ShardDown { at, shard },
                        "shard_up" => FleetEvent::ShardUp { at, shard },
                        _ => {
                            let factor = value
                                .get("factor")
                                .and_then(Json::as_f64)
                                .ok_or_else(|| bad("shard_throttle missing factor".into()))?;
                            if !(factor > 0.0 && factor <= 1.0) {
                                return Err(bad(format!(
                                    "throttle factor {factor} outside (0, 1]"
                                )));
                            }
                            FleetEvent::ShardThrottle { at, shard, factor }
                        }
                    }
                }
                Some("set_priorities") => {
                    let mode = match value.get("mode").and_then(Json::as_str) {
                        Some("dynamic") => PriorityMode::Dynamic,
                        Some("static") => {
                            let p = value
                                .get("priorities")
                                .and_then(Json::as_arr)
                                .ok_or_else(|| {
                                    bad("static mode missing priorities".into())
                                })?
                                .iter()
                                .map(Json::as_f64)
                                .collect::<Option<Vec<f64>>>()
                                .ok_or_else(|| bad("priorities must be numbers".into()))?;
                            PriorityMode::Static(p)
                        }
                        _ => return Err(bad("unknown priority mode".into())),
                    };
                    FleetEvent::SetPriorities { at, mode }
                }
                _ => return Err(bad("unknown event kind".into())),
            };
            events.push(event);
        }
        let meta = meta.ok_or(TraceError {
            line: 0,
            message: "empty trace".into(),
            snippet: String::new(),
        })?;
        Ok(Trace { meta, events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::{generate, ArrivalProcess, LoadSpec};

    fn bursty_spec() -> LoadSpec {
        LoadSpec {
            horizon: 900.0,
            process: ArrivalProcess::OnOff {
                burst_rate: 0.3,
                idle_rate: 0.01,
                mean_burst: 40.0,
                mean_idle: 120.0,
            },
            priority_churn_rate: 1.0 / 200.0,
            seed: 11,
            ..Default::default()
        }
    }

    #[test]
    fn jsonl_roundtrip_is_exact() {
        let spec = bursty_spec();
        let trace = Trace::new(
            TraceMeta::new(4, spec.horizon, spec.seed, "t"),
            generate(&spec),
        );
        let text = trace.to_jsonl();
        let back = Trace::from_jsonl(&text).expect("parse");
        assert_eq!(back, trace, "events and meta must round-trip bit-for-bit");
        // Re-serializing is byte-stable too.
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn platform_mix_roundtrips_in_v2_headers() {
        let spec = bursty_spec();
        let mix = vec!["orange-pi-5".to_string(), "jetson-orin-nx".to_string()];
        let trace = Trace::new(
            TraceMeta::new(2, spec.horizon, spec.seed, "mixed").with_platforms(mix.clone()),
            generate(&spec),
        );
        let text = trace.to_jsonl();
        assert!(text.lines().next().unwrap().contains("\"rankmap_fleet_trace\":2"));
        let back = Trace::from_jsonl(&text).expect("parse");
        assert_eq!(back.meta.platforms, mix);
        assert_eq!(back, trace);
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn seeds_beyond_f64_precision_survive() {
        // Hash-derived seeds exceed 2^53; a JSON number would mangle them.
        let trace = Trace::new(TraceMeta::new(1, 10.0, u64::MAX, "big"), Vec::new());
        let back = Trace::from_jsonl(&trace.to_jsonl()).expect("parse");
        assert_eq!(back.meta.seed, u64::MAX);
    }

    #[test]
    fn legacy_v1_headers_still_parse() {
        let text = "{\"rankmap_fleet_trace\":1,\"shards\":2,\"horizon\":10,\"seed\":\"7\",\"label\":\"old\"}\n\
                    {\"at\":1,\"kind\":\"arrive\",\"model\":\"AlexNet\",\"request\":0}\n";
        let trace = Trace::from_jsonl(text).expect("v1 parses");
        assert_eq!(trace.meta.shards, 2);
        assert!(trace.meta.platforms.is_empty(), "v1 traces carry no platform mix");
    }

    #[test]
    fn header_is_required_and_versioned() {
        assert!(Trace::from_jsonl("").is_err());
        assert!(Trace::from_jsonl("{\"at\":1,\"kind\":\"depart\",\"request\":0}\n").is_err());
        // Version 3 (the current format) parses; a future version 4 does not.
        assert!(Trace::from_jsonl(
            "{\"rankmap_fleet_trace\":3,\"shards\":1,\"horizon\":1,\"seed\":0,\"label\":\"\"}\n"
        )
        .is_ok());
        assert!(Trace::from_jsonl(
            "{\"rankmap_fleet_trace\":4,\"shards\":1,\"horizon\":1,\"seed\":0,\"label\":\"\"}\n"
        )
        .is_err());
    }

    #[test]
    fn fault_events_roundtrip_under_a_v3_header() {
        let spec = LoadSpec {
            faults: Some(crate::load::FaultSpec {
                shards: 4,
                mtbf: 120.0,
                mttr: 40.0,
                throttle_rate: 1.0 / 150.0,
                ..Default::default()
            }),
            ..bursty_spec()
        };
        let trace = Trace::new(
            TraceMeta::new(4, spec.horizon, spec.seed, "chaos"),
            generate(&spec),
        );
        assert!(
            trace.events.iter().any(|e| matches!(e, FleetEvent::ShardDown { .. })),
            "fault layer should have produced at least one outage"
        );
        let text = trace.to_jsonl();
        assert!(
            text.lines().next().unwrap().contains("\"rankmap_fleet_trace\":3"),
            "fault events promote the header to version 3"
        );
        let back = Trace::from_jsonl(&text).expect("parse");
        assert_eq!(back, trace, "fault events must round-trip bit-for-bit");
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn fault_free_traces_keep_the_v2_header() {
        let spec = bursty_spec();
        let trace = Trace::new(
            TraceMeta::new(4, spec.horizon, spec.seed, "t"),
            generate(&spec),
        );
        assert!(
            trace.to_jsonl().lines().next().unwrap().contains("\"rankmap_fleet_trace\":2"),
            "without faults the on-disk format is unchanged"
        );
    }

    #[test]
    fn malformed_traces_are_rejected_per_version() {
        // v1: a fault kind did not exist yet.
        let v1 = "{\"rankmap_fleet_trace\":1,\"shards\":2,\"horizon\":10,\"seed\":0,\"label\":\"\"}\n\
                  {\"at\":1,\"kind\":\"shard_down\",\"shard\":0}\n";
        let err = Trace::from_jsonl(v1).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("version-1"), "{err}");
        // v2: same, and the snippet quotes the offending line.
        let v2 = "{\"rankmap_fleet_trace\":2,\"shards\":2,\"horizon\":10,\"seed\":0,\"label\":\"\"}\n\
                  {\"at\":1,\"kind\":\"shard_throttle\",\"factor\":0.5,\"shard\":0}\n";
        let err = Trace::from_jsonl(v2).unwrap_err();
        assert!(err.message.contains("version-2"), "{err}");
        assert!(err.snippet.contains("shard_throttle"), "{err}");
        // v3: fault events are validated against the declared fleet shape.
        let header =
            "{\"rankmap_fleet_trace\":3,\"shards\":2,\"horizon\":10,\"seed\":0,\"label\":\"\"}\n";
        let out_of_range =
            format!("{header}{}", "{\"at\":1,\"kind\":\"shard_down\",\"shard\":2}\n");
        let err = Trace::from_jsonl(&out_of_range).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("declares 2 shards"), "{err}");
        let bad_factor = format!(
            "{header}{}",
            "{\"at\":1,\"kind\":\"shard_throttle\",\"factor\":1.5,\"shard\":0}\n"
        );
        let err = Trace::from_jsonl(&bad_factor).unwrap_err();
        assert!(err.message.contains("outside (0, 1]"), "{err}");
        let missing_shard = format!("{header}{}", "{\"at\":1,\"kind\":\"shard_up\"}\n");
        let err = Trace::from_jsonl(&missing_shard).unwrap_err();
        assert!(err.message.contains("missing shard"), "{err}");
    }

    #[test]
    fn errors_carry_line_number_and_snippet() {
        let text = "{\"rankmap_fleet_trace\":1,\"shards\":1,\"horizon\":10,\"seed\":0,\"label\":\"\"}\n\
                    {\"at\":1,\"kind\":\"arrive\",\"model\":\"NoSuchNet\",\"request\":0}\n";
        let err = Trace::from_jsonl(text).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.snippet.contains("NoSuchNet"), "snippet quotes the bad line: {err}");
        let rendered = err.to_string();
        assert!(rendered.contains("line 2") && rendered.contains("NoSuchNet"), "{rendered}");
        // Long lines are truncated, not dumped wholesale.
        let long = format!(
            "{{\"rankmap_fleet_trace\":1,\"shards\":1,\"horizon\":10,\"seed\":0,\"label\":\"{}\"}}",
            "x".repeat(500)
        );
        let err = Trace::from_jsonl(&format!("{long}\n{long}\n")).unwrap_err();
        assert!(err.snippet.chars().count() <= TraceError::SNIPPET_LIMIT + 1);
        assert!(err.snippet.ends_with('…'));
    }

    /// A sink that records the cumulative byte count at every `write`
    /// call — evidence the writer pushes each line out as it is handed
    /// the event rather than buffering the stream.
    struct CountingSink {
        bytes: Vec<u8>,
        writes_seen: Vec<usize>,
    }

    impl std::io::Write for CountingSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.bytes.extend_from_slice(buf);
            self.writes_seen.push(self.bytes.len());
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn trace_writer_matches_to_jsonl_byte_for_byte() {
        // Fault-free (v2 header) and faulty (v3 header) streams both
        // serialize identically through the streaming writer.
        for faults in [false, true] {
            let spec = LoadSpec {
                faults: faults.then(|| crate::load::FaultSpec {
                    shards: 4,
                    mtbf: 120.0,
                    mttr: 40.0,
                    throttle_rate: 1.0 / 150.0,
                    ..Default::default()
                }),
                ..bursty_spec()
            };
            let meta = TraceMeta::new(4, spec.horizon, spec.seed, "w");
            let trace = Trace::new(meta.clone(), generate(&spec));
            let mut writer = TraceWriter::new(Vec::new(), &meta, faults).unwrap();
            for event in crate::load::LoadStream::new(&spec) {
                writer.write_event(&event).unwrap();
            }
            assert_eq!(writer.events_written(), trace.events.len() as u64);
            let streamed = String::from_utf8(writer.finish().unwrap()).unwrap();
            assert_eq!(streamed, trace.to_jsonl(), "faults={faults}");
            // And the streamed output replays to the identical trace.
            assert_eq!(Trace::from_jsonl(&streamed).expect("parses"), trace);
        }
    }

    #[test]
    fn trace_writer_rejects_fault_events_under_a_v2_header() {
        let meta = TraceMeta::new(2, 100.0, 0, "v2");
        let mut writer = TraceWriter::new(Vec::new(), &meta, false).unwrap();
        writer
            .write_event(&FleetEvent::Arrive {
                at: 1.0,
                request: RequestId::new(0),
                model: ModelId::from_str("AlexNet").unwrap(),
            })
            .expect("plain events are fine");
        let err = writer
            .write_event(&FleetEvent::ShardDown { at: 2.0, shard: 1 })
            .expect_err("fault event needs a v3 header");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("has_faults"), "{err}");
    }

    #[test]
    fn trace_writer_streams_each_event_to_the_sink() {
        let meta = TraceMeta::new(1, 100.0, 0, "inc");
        let sink = CountingSink { bytes: Vec::new(), writes_seen: Vec::new() };
        let mut writer = TraceWriter::new(sink, &meta, false).unwrap();
        for k in 0..10u64 {
            writer
                .write_event(&FleetEvent::Arrive {
                    at: k as f64,
                    request: RequestId::new(k),
                    model: ModelId::from_str("AlexNet").unwrap(),
                })
                .unwrap();
        }
        let sink = writer.finish().unwrap();
        // Header + 10 events, each line written in its own write calls —
        // the sink saw monotonically growing byte counts, not one final
        // dump.
        assert_eq!(sink.bytes.iter().filter(|&&b| b == b'\n').count(), 11);
        assert!(sink.writes_seen.len() >= 11, "every line hit the sink as written");
        assert!(sink.writes_seen.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn platform_count_must_match_shards() {
        let text = "{\"rankmap_fleet_trace\":2,\"shards\":2,\"horizon\":10,\"seed\":\"0\",\
                    \"label\":\"\",\"platforms\":[\"orange-pi-5\"]}\n";
        let err = Trace::from_jsonl(text).unwrap_err();
        assert!(err.message.contains("platforms"), "{err}");
    }

    #[test]
    fn out_of_order_events_are_rejected_at_parse_time() {
        let text = "{\"rankmap_fleet_trace\":1,\"shards\":1,\"horizon\":10,\"seed\":\"0\",\"label\":\"\"}\n\
                    {\"at\":5,\"kind\":\"arrive\",\"model\":\"AlexNet\",\"request\":0}\n\
                    {\"at\":2,\"kind\":\"depart\",\"request\":0}\n";
        let err = Trace::from_jsonl(text).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("out of order"), "{err}");
    }

    #[test]
    fn duplicate_request_ids_are_rejected_at_parse_time() {
        let header =
            "{\"rankmap_fleet_trace\":1,\"shards\":1,\"horizon\":10,\"seed\":\"0\",\"label\":\"\"}\n";
        let arrive0 = "{\"at\":1,\"kind\":\"arrive\",\"model\":\"AlexNet\",\"request\":0}\n";
        let double_arrive = format!(
            "{header}{arrive0}{}",
            "{\"at\":2,\"kind\":\"arrive\",\"model\":\"AlexNet\",\"request\":0}\n"
        );
        let err = Trace::from_jsonl(&double_arrive).unwrap_err();
        assert!(err.message.contains("arrives twice"), "{err}");
        let double_depart = format!(
            "{header}{arrive0}{}{}",
            "{\"at\":2,\"kind\":\"depart\",\"request\":0}\n",
            "{\"at\":3,\"kind\":\"depart\",\"request\":0}\n"
        );
        let err = Trace::from_jsonl(&double_depart).unwrap_err();
        assert!(err.message.contains("departs twice"), "{err}");
        let phantom_depart =
            format!("{header}{}", "{\"at\":1,\"kind\":\"depart\",\"request\":5}\n");
        let err = Trace::from_jsonl(&phantom_depart).unwrap_err();
        assert!(err.message.contains("departs before arriving"), "{err}");
    }

    #[test]
    fn events_past_the_horizon_are_rejected_at_parse_time() {
        let text = "{\"rankmap_fleet_trace\":1,\"shards\":1,\"horizon\":10,\"seed\":\"0\",\"label\":\"\"}\n\
                    {\"at\":20,\"kind\":\"arrive\",\"model\":\"AlexNet\",\"request\":0}\n";
        let err = Trace::from_jsonl(text).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("horizon"), "{err}");
    }

    #[test]
    fn non_positive_horizons_are_rejected_at_parse_time() {
        for h in ["-5", "0"] {
            let text = format!(
                "{{\"rankmap_fleet_trace\":1,\"shards\":1,\"horizon\":{h},\"seed\":\"0\",\"label\":\"\"}}\n"
            );
            let err = Trace::from_jsonl(&text).unwrap_err();
            assert!(err.message.contains("positive horizon"), "{err}");
        }
    }

    #[test]
    fn malformed_events_name_their_line() {
        let text = "{\"rankmap_fleet_trace\":1,\"shards\":1,\"horizon\":10,\"seed\":0,\"label\":\"\"}\n\
                    {\"at\":1,\"kind\":\"arrive\",\"model\":\"NoSuchNet\",\"request\":0}\n";
        let err = Trace::from_jsonl(text).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("NoSuchNet"));
    }
}
