//! Fleet serving layer for the RankMap reproduction: multi-device
//! sharding — across *heterogeneous* board types — priority-aware
//! admission, and a trace-driven load generator.
//!
//! The paper maps multi-DNN workloads onto *one* heterogeneous board;
//! the ROADMAP's north star is a production-scale system serving heavy
//! traffic. This crate is the bridge (see `docs/fleet.md` and
//! `docs/heterogeneous.md`):
//!
//! * [`FleetRuntime`] owns N device shards — each its own `Platform` +
//!   [`RankMapManager`](rankmap_core::manager::RankMapManager) (with its
//!   own plan cache) + step-wise
//!   [`RuntimeSession`](rankmap_core::runtime::RuntimeSession) — and
//!   interleaves them on one global clock. A [`FleetSpec`] composes the
//!   fleet from [`ShardSpec`] groups, so a mixed Orange-Pi/Jetson fleet
//!   is as natural as a homogeneous one.
//! * The **admission/placement layer** routes each arriving DNN instance
//!   by *normalized* potential delta — fraction of each shard's own
//!   board ideal, so dissimilar boards compete on equal terms — scored
//!   through one fused
//!   [`ThroughputOracle::predict_grouped`](rankmap_core::oracle::ThroughputOracle::predict_grouped)
//!   call per platform group. It rejects arrivals that would be starved
//!   everywhere and rebalances a shard whose potential collapses.
//! * The **load generator** ([`load`]) offers Poisson, bursty on/off, and
//!   diurnal arrival processes, and [`trace`] records/replays runs as
//!   JSONL — including the fleet's platform mix (format version 2) — so
//!   any run is reproducible bit-for-bit from a trace file.
//! * The **shard-parallel executor** ([`executor`]) advances all shards
//!   concurrently: [`FleetConfig::parallelism`] selects
//!   [`Parallelism::Threads`]`(n)` (global event barriers; the default
//!   sizes to the host's cores),
//!   [`Parallelism::Async`]` { workers, max_epoch_lag, apply_lanes }`
//!   (the barrier-free epoch log: bounded-staleness speculative scoring
//!   validated at apply time, optionally retiring applies through
//!   out-of-order per-shard lanes), or the [`Parallelism::Sequential`]
//!   reference — all produce bit-identical placements, timelines,
//!   metrics, and trace replays (property-tested in `tests/parallel.rs`
//!   and `tests/async_exec.rs`).
//!
//! # Quickstart (homogeneous)
//!
//! ```no_run
//! use rankmap_core::oracle::AnalyticalOracle;
//! use rankmap_fleet::{generate, FleetConfig, FleetRuntime, LoadSpec};
//! use rankmap_platform::Platform;
//!
//! let platform = Platform::orange_pi_5();
//! let oracle = AnalyticalOracle::new(&platform);
//! let fleet = FleetRuntime::homogeneous(&platform, &oracle, 4, FleetConfig::default());
//! let spec = LoadSpec::default();
//! let events = generate(&spec);
//! let outcome = fleet.execute(&events, spec.horizon);
//! println!(
//!     "admitted {}/{} — aggregate potential {:.1} pot·s",
//!     outcome.metrics.admitted, outcome.metrics.offered,
//!     outcome.metrics.aggregate_potential_seconds
//! );
//! ```
//!
//! # A heterogeneous fleet
//!
//! ```no_run
//! use rankmap_core::oracle::AnalyticalOracle;
//! use rankmap_fleet::{generate, FleetConfig, FleetRuntime, FleetSpec, LoadSpec, ShardSpec};
//! use rankmap_platform::Platform;
//!
//! let orange = Platform::orange_pi_5();
//! let jetson = Platform::jetson_orin_nx();
//! let orange_oracle = AnalyticalOracle::new(&orange);
//! let jetson_oracle = AnalyticalOracle::new(&jetson);
//! let spec = FleetSpec::new(vec![
//!     ShardSpec::new(&orange, &orange_oracle, 2),
//!     ShardSpec::new(&jetson, &jetson_oracle, 2),
//! ]);
//! let fleet = FleetRuntime::new(&spec, FleetConfig::default());
//! let load = LoadSpec::default();
//! let outcome = fleet.execute(&generate(&load), load.horizon);
//! for (platform, admitted) in outcome
//!     .metrics
//!     .per_shard_platform
//!     .iter()
//!     .zip(&outcome.metrics.per_shard_admitted)
//! {
//!     println!("{platform}: {admitted} admitted");
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod executor;
mod faults;
mod index;
mod lanes;
pub mod load;
pub mod metrics;
mod placement;
mod rebalance;
pub mod runtime;
mod shard;
pub mod spec;
mod speculate;
pub mod telemetry;
pub mod trace;

pub use executor::{FleetConfig, FleetConfigError, Parallelism, LOOKAHEAD_BOUND};
pub use load::{
    generate, ArrivalProcess, FaultSpec, FlashSpec, FleetEvent, LoadSpec, LoadStream,
    Popularity, RequestId, TenantSpec,
};
pub use metrics::{FleetMetrics, LatencyStats, PlacementOutcome, PlacementRecord};
pub use rankmap_telemetry::MemoStats;
pub use runtime::{FleetOutcome, FleetRuntime};
pub use spec::{FleetSpec, FleetSpecError, ShardSpec};
pub use telemetry::{ShardSample, TelemetrySnapshot, TelemetrySpec};
pub use trace::{Trace, TraceError, TraceMeta, TraceWriter};
