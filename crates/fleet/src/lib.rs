//! Fleet serving layer for the RankMap reproduction: multi-device
//! sharding, priority-aware admission, and a trace-driven load generator.
//!
//! The paper maps multi-DNN workloads onto *one* heterogeneous board;
//! the ROADMAP's north star is a production-scale system serving heavy
//! traffic. This crate is the bridge (see `docs/fleet.md`):
//!
//! * [`FleetRuntime`] owns N device shards — each a `Platform` +
//!   [`RankMapManager`](rankmap_core::manager::RankMapManager) (with its
//!   own plan cache) + step-wise
//!   [`RuntimeSession`](rankmap_core::runtime::RuntimeSession) — and
//!   interleaves them on one global clock.
//! * The **admission/placement layer** routes each arriving DNN instance
//!   to the shard with the best predicted potential delta (scored through
//!   [`ThroughputOracle::predict_batch`](rankmap_core::oracle::ThroughputOracle::predict_batch)),
//!   rejects arrivals that would be starved everywhere, and rebalances a
//!   shard whose potential collapses.
//! * The **load generator** ([`load`]) offers Poisson, bursty on/off, and
//!   diurnal arrival processes, and [`trace`] records/replays runs as
//!   JSONL so any run is reproducible bit-for-bit from a trace file.
//!
//! # Quickstart
//!
//! ```no_run
//! use rankmap_core::oracle::AnalyticalOracle;
//! use rankmap_fleet::{generate, FleetConfig, FleetRuntime, LoadSpec};
//! use rankmap_platform::Platform;
//!
//! let platform = Platform::orange_pi_5();
//! let oracle = AnalyticalOracle::new(&platform);
//! let fleet = FleetRuntime::homogeneous(&platform, &oracle, 4, FleetConfig::default());
//! let spec = LoadSpec::default();
//! let events = generate(&spec);
//! let outcome = fleet.execute(&events, spec.horizon);
//! println!(
//!     "admitted {}/{} — aggregate potential {:.1} pot·s",
//!     outcome.metrics.admitted, outcome.metrics.offered,
//!     outcome.metrics.aggregate_potential_seconds
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod load;
pub mod metrics;
pub mod runtime;
pub mod trace;

pub use load::{generate, ArrivalProcess, FleetEvent, LoadSpec, RequestId};
pub use metrics::{FleetMetrics, LatencyStats, PlacementOutcome, PlacementRecord};
pub use runtime::{FleetConfig, FleetOutcome, FleetRuntime};
pub use trace::{Trace, TraceError, TraceMeta};
