//! Failure handling: priority-aware evacuation of a failing shard and
//! the fleet-wide overload guard.
//!
//! Both paths run at the executor's event barrier and reuse the
//! placement layer's normalized-potential scoring, so every decision is
//! a pure function of shard state and bit-identical between
//! [`crate::Parallelism::Sequential`] and [`crate::Parallelism::Threads`]
//! (probe building fans across the worker pool; triage order, the
//! per-victim destination argmax, and the guard's victim selection run
//! serially over shard-ordered results).
//!
//! **Evacuation triage.** When a shard goes down its live set is ranked
//! by priority weight (descending, instance order breaking ties), split
//! into terciles — the availability tiers `[high, mid, low]` reported by
//! [`crate::FleetMetrics::tier_triaged`] — and re-placed one victim at a
//! time: highest priority first, onto the surviving shard with the best
//! normalized potential delta that clears the admission floor. Each move
//! is charged the destination board's full-restage migration cost as a
//! visible stall ([`rankmap_sim::MigrationModel`]); victims no survivor
//! can absorb are shed. Because high-priority instances pick destinations
//! first, survivor capacity runs out on the *low* tiers — the RankMap
//! promise (high priority keeps its throughput) extended to board loss.
//!
//! Under the apply-lane scheduler (`apply_lanes`, see `crate::lanes`) a
//! `ShardDown` evacuation is a **lane fence**: the pending batch drains
//! (prepared applies commit in log order, running their deferred checks)
//! before triage reads the fleet, so evacuation scores exactly the state
//! the serial cursor would. The overload guard is the other way around —
//! it is itself one of the deferred checks that ride the lane walk, and
//! a shed it performs bumps the victim shard's epoch, forcing any later
//! prepared op on that shard to discard and apply directly.

use crate::executor::{Disposition, FleetExecutor, RunState};
use crate::load::RequestId;
use crate::metrics::{PlacementOutcome, PlacementRecord};
use rankmap_core::oracle::ThroughputOracle;
use rankmap_core::runtime::{priorities_or_uniform, DynamicEvent, InstanceId};
use rankmap_sim::{MigrationModel, Workload};

impl<O: ThroughputOracle> FleetExecutor<'_, O> {
    /// The request owning `(shard, instance)`, if any. The pair is unique
    /// across the run, so the map scan has exactly one possible answer
    /// (deterministic despite the hash map's iteration order).
    fn owner_of(state: &RunState, shard: usize, instance: InstanceId) -> Option<RequestId> {
        state.requests.iter().find_map(|(r, d)| {
            matches!(d, Disposition::Active { shard: s, instance: i }
                     if *s == shard && *i == instance)
            .then_some(*r)
        })
    }

    /// Takes shard `src` down at time `t`: closes its serving timeline,
    /// triages its live set by priority, and — under
    /// [`crate::FleetConfig::evacuate`] — re-places victims onto
    /// survivors in priority order, shedding what no survivor absorbs
    /// (with evacuation off, everything is shed: the chaos bench's
    /// baseline).
    ///
    /// `cause` is the flight-recorder sequence number of the triggering
    /// `shard_down` record (when telemetry is on): every `evacuate`/
    /// `shed` record of this outage links back to it, so a post-mortem
    /// can walk the event → decision → outcome chain.
    pub(crate) fn fail_shard(
        &mut self,
        t: f64,
        src: usize,
        state: &mut RunState,
        cause: Option<u64>,
    ) {
        let window = self.config.decision_window;
        let live: Vec<_> = self.shards[src].session.live().to_vec();
        // Triage before anything moves: priority weights on the failing
        // shard's own workload, ranked descending (ties by instance
        // order, so the order is deterministic).
        let mut order: Vec<usize> = (0..live.len()).collect();
        if let Some(shard_state) = self.shards[src].current() {
            let weights = priorities_or_uniform(&self.shards[src].mapper, &shard_state.0);
            order.sort_by(|&a, &b| weights[b].total_cmp(&weights[a]).then(a.cmp(&b)));
        }
        // The board is gone: all live instances leave in one batch (the
        // timeline records zero service from here) and the shard stops
        // taking probes.
        if !live.is_empty() {
            let departs: Vec<DynamicEvent> =
                live.iter().map(|&(id, _)| DynamicEvent::depart(t, id)).collect();
            self.shards[src].apply(t, &departs, window);
        }
        self.shards[src].mark_down();
        // Re-place highest priority first: earlier victims see the most
        // survivor headroom, so capacity exhausts on the low tiers.
        for (rank, &idx) in order.iter().enumerate() {
            let (victim_id, victim_model) = live[idx];
            let tier = (3 * rank / live.len().max(1)).min(2);
            state.tier_triaged[tier] += 1;
            let owner = Self::owner_of(state, src, victim_id);
            let floor = self.config.admission_floor;
            let destination = if self.config.evacuate {
                // The down flag excludes `src` (and every other down
                // shard) from the probe fan-out.
                self.probe_scores(victim_model)
                    .into_iter()
                    .enumerate()
                    .filter_map(|(s, score)| {
                        score.and_then(|(delta, pot)| {
                            (pot >= floor).then_some((s, delta))
                        })
                    })
                    .max_by(|a, b| a.1.total_cmp(&b.1))
            } else {
                None
            };
            match destination {
                Some((dst, delta)) => {
                    let assigned = self.shards[dst].apply(
                        t,
                        &[DynamicEvent::arrive(t, victim_model)],
                        window,
                    );
                    // An evacuation is a real migration: the receiving
                    // board pays the victim's full weight restage + stem
                    // rebuild over its own transfer link.
                    let transfer = MigrationModel::new(self.shards[dst].platform)
                        .full_restage(&Workload::from_ids([victim_model]))
                        .stall_seconds;
                    self.shards[dst].session.charge_stall(transfer);
                    state.evacuation_stall_seconds += transfer;
                    state.evacuated += 1;
                    state.tier_evacuated[tier] += 1;
                    state.per_shard_admitted[dst] += 1;
                    self.telemetry.count("fleet_evacuated_total", 1);
                    if self.telemetry.enabled() {
                        self.telemetry.record(
                            t,
                            "evacuate",
                            cause,
                            vec![
                                ("model", format!("{victim_model:?}")),
                                ("from", src.to_string()),
                                ("to", dst.to_string()),
                                ("tier", tier.to_string()),
                            ],
                        );
                    }
                    if let Some(request) = owner {
                        state.requests.insert(
                            request,
                            Disposition::Active { shard: dst, instance: assigned[0] },
                        );
                        state.placements.push(PlacementRecord {
                            request,
                            at: t,
                            outcome: PlacementOutcome::Evacuated { from: src, to: dst },
                            predicted_delta: delta,
                        });
                    }
                }
                None => {
                    state.shed += 1;
                    self.telemetry.count("fleet_shed_total", 1);
                    if self.telemetry.enabled() {
                        self.telemetry.record(
                            t,
                            "shed",
                            cause,
                            vec![
                                ("model", format!("{victim_model:?}")),
                                ("from", src.to_string()),
                                ("tier", tier.to_string()),
                            ],
                        );
                    }
                    if let Some(request) = owner {
                        state.requests.insert(request, Disposition::Shed);
                        state.placements.push(PlacementRecord {
                            request,
                            at: t,
                            outcome: PlacementOutcome::Shed { from: src },
                            predicted_delta: 0.0,
                        });
                    }
                }
            }
        }
    }

    /// The fleet-wide overload guard: if the worst loaded shard's mean
    /// predicted potential fell below
    /// [`crate::FleetConfig::overload_guard`], shed its lowest-priority
    /// instance outright — low-priority work is dropped *before*
    /// high-priority potential collapses. At most one shed per event
    /// barrier (like the rebalancer), so the guard degrades gradually
    /// rather than mass-evicting on a transient dip. No-op at the
    /// default threshold of `0.0`.
    pub(crate) fn overload_guard(&mut self, t: f64, state: &mut RunState) {
        let guard = self.config.overload_guard;
        if guard <= 0.0 {
            return;
        }
        let window = self.config.decision_window;
        // The rebalancer's health question, shared via `worst_loaded`
        // (indexed O(log S) read or the parallel scan). Down shards are
        // empty and report no health either way.
        let Some((src, mean)) = self.worst_loaded() else {
            return;
        };
        if mean >= guard {
            return;
        }
        let Some(shard_state) = self.shards[src].current() else { return };
        let weights = priorities_or_uniform(&self.shards[src].mapper, &shard_state.0);
        let Some(victim_idx) = weights
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
        else {
            return;
        };
        let (victim_id, _) = self.shards[src].session.live()[victim_idx];
        let owner = Self::owner_of(state, src, victim_id);
        self.shards[src].apply(t, &[DynamicEvent::depart(t, victim_id)], window);
        state.shed += 1;
        self.telemetry.count("fleet_shed_total", 1);
        if self.telemetry.enabled() {
            self.telemetry.record(
                t,
                "overload_shed",
                None,
                vec![("shard", src.to_string()), ("mean", format!("{mean:.6}"))],
            );
        }
        if let Some(request) = owner {
            state.requests.insert(request, Disposition::Shed);
            state.placements.push(PlacementRecord {
                request,
                at: t,
                outcome: PlacementOutcome::Shed { from: src },
                predicted_delta: 0.0,
            });
        }
    }
}
