//! Determinism of the shard-parallel executor: `Parallelism::Threads(n)`
//! must produce placements, metrics, and per-shard timelines
//! **bit-identical** to `Parallelism::Sequential` — across seeds, load
//! shapes, and thread counts (including widths far above the shard
//! count) — and recorded traces must replay bit-for-bit *under the
//! parallel executor*.
//!
//! This is the load-bearing guarantee of the executor refactor: threading
//! is an execution strategy, never a policy. Work between event barriers
//! is partitioned by shard and merged in canonical shard order, so no
//! floating-point operation ever changes its association order (see
//! `rankmap_fleet::executor`'s determinism argument).

use proptest::prelude::*;
use rankmap_core::manager::ManagerConfig;
use rankmap_core::oracle::AnalyticalOracle;
use rankmap_fleet::{
    generate, ArrivalProcess, FleetConfig, FleetOutcome, FleetRuntime, FleetSpec, LoadSpec,
    Parallelism, ShardSpec, Trace, TraceMeta,
};
use rankmap_platform::Platform;

fn config(parallelism: Parallelism) -> FleetConfig {
    FleetConfig {
        manager: ManagerConfig { mcts_iterations: 40, warm_iterations: 20, ..Default::default() },
        max_per_shard: 3,
        // Rebalance eagerly so migrations (the concurrent two-shard
        // apply) are part of what the property covers.
        rebalance_threshold: 0.6,
        rebalance_margin: 0.02,
        parallelism,
        ..Default::default()
    }
}

fn load(seed: u64, process_idx: usize) -> LoadSpec {
    let process = match process_idx {
        0 => ArrivalProcess::Poisson { rate: 1.0 / 18.0 },
        1 => ArrivalProcess::OnOff {
            burst_rate: 0.2,
            idle_rate: 0.01,
            mean_burst: 30.0,
            mean_idle: 60.0,
        },
        _ => ArrivalProcess::Diurnal { mean_rate: 1.0 / 15.0, amplitude: 0.8, period: 120.0 },
    };
    LoadSpec {
        horizon: 240.0,
        process,
        mean_lifetime: 90.0,
        // Priority churn exercises the widest barrier (every shard
        // re-maps concurrently on a SetPriorities event).
        priority_churn_rate: 1.0 / 80.0,
        seed,
        ..Default::default()
    }
}

fn run(platform: &Platform, spec: &LoadSpec, parallelism: Parallelism) -> FleetOutcome {
    let oracle = AnalyticalOracle::new(platform);
    let events = generate(spec);
    FleetRuntime::homogeneous(platform, &oracle, 3, config(parallelism))
        .execute(&events, spec.horizon)
}

fn assert_identical(reference: &FleetOutcome, candidate: &FleetOutcome, label: &str) {
    assert_eq!(candidate.placements, reference.placements, "{label}: placement log diverged");
    assert_eq!(candidate.metrics, reference.metrics, "{label}: metrics diverged");
    assert_eq!(candidate.timelines, reference.timelines, "{label}: timelines diverged");
    // Belt-and-braces bit comparison of the float payloads: `==` treats
    // 0.0 and -0.0 as equal, bit patterns do not.
    for (a, b) in reference.timelines.iter().flatten().zip(candidate.timelines.iter().flatten())
    {
        for (x, y) in a.potentials.iter().zip(&b.potentials) {
            assert_eq!(x.to_bits(), y.to_bits(), "{label}: potential bits diverged");
        }
        for (x, y) in a.throughputs.iter().zip(&b.throughputs) {
            assert_eq!(x.to_bits(), y.to_bits(), "{label}: throughput bits diverged");
        }
        assert_eq!(
            a.migration_stall.to_bits(),
            b.migration_stall.to_bits(),
            "{label}: stall bits diverged"
        );
    }
    for (a, b) in reference.placements.iter().zip(&candidate.placements) {
        assert_eq!(
            a.predicted_delta.to_bits(),
            b.predicted_delta.to_bits(),
            "{label}: predicted-delta bits diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The headline property: every thread count — serial, matching the
    /// shard count, and far oversubscribing it — reproduces the
    /// sequential reference byte for byte, across seeds and load shapes,
    /// and the recorded trace replays bit-for-bit under the parallel
    /// executor.
    #[test]
    fn threads_reproduce_sequential_bit_for_bit(
        seed in 0u64..64,
        process_idx in 0usize..3,
    ) {
        let platform = Platform::orange_pi_5();
        let spec = load(seed, process_idx);
        let reference = run(&platform, &spec, Parallelism::Sequential);
        // A run worth comparing: the stream admitted something.
        prop_assert!(reference.metrics.offered > 0);
        for n in [1usize, 2, 4, 8] {
            let threaded = run(&platform, &spec, Parallelism::Threads(n));
            assert_identical(&reference, &threaded, &format!("Threads({n}) seed {seed}"));
        }
        // Trace replay under the parallel executor: record the stream,
        // parse it back, and run it Threads(4) — still bit-identical.
        let events = generate(&spec);
        let trace = Trace::new(
            TraceMeta::new(3, spec.horizon, spec.seed, "parallel-replay"),
            events,
        );
        let parsed = Trace::from_jsonl(&trace.to_jsonl()).expect("trace parses");
        let oracle = AnalyticalOracle::new(&platform);
        let replayed =
            FleetRuntime::homogeneous(&platform, &oracle, 3, config(Parallelism::Threads(4)))
                .execute_trace(&parsed);
        assert_identical(&reference, &replayed, &format!("replay seed {seed}"));
    }
}

/// The mixed-fleet variant: two platform groups (two fused-scoring
/// domains, two oracles) under the threaded executor still reproduce the
/// sequential reference exactly.
#[test]
fn mixed_fleet_threads_match_sequential() {
    let orange = Platform::orange_pi_5();
    let jetson = Platform::jetson_orin_nx();
    let orange_oracle = AnalyticalOracle::new(&orange);
    let jetson_oracle = AnalyticalOracle::new(&jetson);
    let spec = load(11, 1);
    let events = generate(&spec);
    let fleet = |parallelism| {
        FleetRuntime::new(
            &FleetSpec::new(vec![
                ShardSpec::new(&orange, &orange_oracle, 2),
                ShardSpec::new(&jetson, &jetson_oracle, 2),
            ]),
            FleetConfig { parallelism, ..config(parallelism) },
        )
    };
    let reference = fleet(Parallelism::Sequential).execute(&events, spec.horizon);
    assert!(reference.metrics.offered > 0);
    for n in [2usize, 4, 8] {
        let threaded = fleet(Parallelism::Threads(n)).execute(&events, spec.horizon);
        assert_identical(&reference, &threaded, &format!("mixed Threads({n})"));
    }
}

/// The non-fused (serial per-shard scoring) path is covered too: fused
/// off + threads on must equal fused off + sequential.
#[test]
fn non_fused_scoring_is_thread_invariant() {
    let platform = Platform::orange_pi_5();
    let oracle = AnalyticalOracle::new(&platform);
    let spec = load(3, 0);
    let events = generate(&spec);
    let run = |parallelism| {
        FleetRuntime::homogeneous(
            &platform,
            &oracle,
            3,
            FleetConfig { fused_scoring: false, ..config(parallelism) },
        )
        .execute(&events, spec.horizon)
    };
    let reference = run(Parallelism::Sequential);
    let threaded = run(Parallelism::Threads(4));
    assert_identical(&reference, &threaded, "non-fused Threads(4)");
}
