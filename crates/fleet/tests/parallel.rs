//! Determinism of the shard-parallel executor: `Parallelism::Threads(n)`
//! must produce placements, metrics, and per-shard timelines
//! **bit-identical** to `Parallelism::Sequential` — across seeds, load
//! shapes, and thread counts (including widths far above the shard
//! count) — and recorded traces must replay bit-for-bit *under the
//! parallel executor*.
//!
//! This is the load-bearing guarantee of the executor refactor: threading
//! is an execution strategy, never a policy. Work between event barriers
//! is partitioned by shard and merged in canonical shard order, so no
//! floating-point operation ever changes its association order (see
//! `rankmap_fleet::executor`'s determinism argument). The scenario
//! matrix, outcome bit-compare, and trace-replay check live in the
//! shared conformance harness (`tests/common/mod.rs`).

mod common;

use common::{assert_identical, assert_replay_identical, quick_manager, Scenario};
use proptest::prelude::*;
use rankmap_core::oracle::AnalyticalOracle;
use rankmap_fleet::{
    generate, FleetConfig, FleetOutcome, FleetRuntime, FleetSpec, LoadSpec, Parallelism,
    ShardSpec,
};
use rankmap_platform::Platform;

fn config(parallelism: Parallelism) -> FleetConfig {
    FleetConfig {
        manager: quick_manager(),
        max_per_shard: 3,
        // Rebalance eagerly so migrations (the concurrent two-shard
        // apply) are part of what the property covers.
        rebalance_threshold: 0.6,
        rebalance_margin: 0.02,
        parallelism,
        ..Default::default()
    }
}

fn load(seed: u64, process_idx: usize) -> LoadSpec {
    Scenario::new(seed, process_idx).load()
}

fn run(platform: &Platform, spec: &LoadSpec, parallelism: Parallelism) -> FleetOutcome {
    let oracle = AnalyticalOracle::new(platform);
    let events = generate(spec);
    FleetRuntime::homogeneous(platform, &oracle, 3, config(parallelism))
        .execute(&events, spec.horizon)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The headline property: every thread count — serial, matching the
    /// shard count, and far oversubscribing it — reproduces the
    /// sequential reference byte for byte, across seeds and load shapes,
    /// and the recorded trace replays bit-for-bit under the parallel
    /// executor.
    #[test]
    fn threads_reproduce_sequential_bit_for_bit(
        seed in 0u64..64,
        process_idx in 0usize..3,
    ) {
        let platform = Platform::orange_pi_5();
        let spec = load(seed, process_idx);
        let reference = run(&platform, &spec, Parallelism::Sequential);
        // A run worth comparing: the stream admitted something.
        prop_assert!(reference.metrics.offered > 0);
        for n in [1usize, 2, 4, 8] {
            let threaded = run(&platform, &spec, Parallelism::Threads(n));
            assert_identical(&reference, &threaded, &format!("Threads({n}) seed {seed}"));
        }
        // Trace replay under the parallel executor: record the stream,
        // parse it back, and run it Threads(4) — still bit-identical.
        let oracle = AnalyticalOracle::new(&platform);
        assert_replay_identical(
            &spec,
            3,
            &format!("parallel-replay seed {seed}"),
            &reference,
            FleetRuntime::homogeneous(&platform, &oracle, 3, config(Parallelism::Threads(4))),
        );
    }
}

/// The mixed-fleet variant: two platform groups (two fused-scoring
/// domains, two oracles) under the threaded executor still reproduce the
/// sequential reference exactly.
#[test]
fn mixed_fleet_threads_match_sequential() {
    let orange = Platform::orange_pi_5();
    let jetson = Platform::jetson_orin_nx();
    let orange_oracle = AnalyticalOracle::new(&orange);
    let jetson_oracle = AnalyticalOracle::new(&jetson);
    let spec = load(11, 1);
    let events = generate(&spec);
    let fleet = |parallelism| {
        FleetRuntime::new(
            &FleetSpec::new(vec![
                ShardSpec::new(&orange, &orange_oracle, 2),
                ShardSpec::new(&jetson, &jetson_oracle, 2),
            ]),
            FleetConfig { parallelism, ..config(parallelism) },
        )
    };
    let reference = fleet(Parallelism::Sequential).execute(&events, spec.horizon);
    assert!(reference.metrics.offered > 0);
    for n in [2usize, 4, 8] {
        let threaded = fleet(Parallelism::Threads(n)).execute(&events, spec.horizon);
        assert_identical(&reference, &threaded, &format!("mixed Threads({n})"));
    }
}

/// The non-fused (serial per-shard scoring) path is covered too: fused
/// off + threads on must equal fused off + sequential.
#[test]
fn non_fused_scoring_is_thread_invariant() {
    let platform = Platform::orange_pi_5();
    let oracle = AnalyticalOracle::new(&platform);
    let spec = load(3, 0);
    let events = generate(&spec);
    let run = |parallelism| {
        FleetRuntime::homogeneous(
            &platform,
            &oracle,
            3,
            FleetConfig { fused_scoring: false, ..config(parallelism) },
        )
        .execute(&events, spec.horizon)
    };
    let reference = run(Parallelism::Sequential);
    let threaded = run(Parallelism::Threads(4));
    assert_identical(&reference, &threaded, "non-fused Threads(4)");
}
