//! The shared determinism-conformance harness.
//!
//! Every fleet bit-identity suite — `parallel.rs` (thread widths),
//! `indexed.rs` (index vs full scan), `chaos.rs` (fault schedules),
//! `telemetry.rs` (observation on/off), `async_exec.rs` (the epoch-log
//! executor) — asks the same question: does some execution strategy
//! reproduce the sequential reference **byte for byte** across a
//! seeds × loads × faults matrix? This module owns the three shared
//! pieces so the suites state only their strategy:
//!
//! * [`Scenario`] — the matrix builder: seed × arrival process
//!   (Poisson/OnOff/Diurnal) × optional fault layer × optional
//!   Zipf-skewed popularity, with per-suite rate overrides.
//! * [`assert_identical`] — the outcome bit-compare: structural equality
//!   plus `to_bits` comparison of every float payload (placement deltas,
//!   timeline potentials/throughputs, migration and evacuation stalls —
//!   `==` treats `0.0` and `-0.0` as equal; bit patterns do not).
//! * [`assert_replay_identical`] — the trace-replay check: record the
//!   stream, round-trip it through JSONL (asserting the parse is exact
//!   and that fault traffic upgrades the header to format v3), then
//!   re-execute under the suite's candidate fleet and bit-compare.

// Each suite uses the subset of the harness its matrix needs; the unused
// remainder is expected, not suspicious.
#![allow(dead_code)]

use rankmap_core::manager::ManagerConfig;
use rankmap_core::oracle::ThroughputOracle;
use rankmap_fleet::{
    generate, ArrivalProcess, FaultSpec, FleetEvent, FleetOutcome, FleetRuntime, LoadSpec,
    Popularity, Trace, TraceMeta,
};

/// The small per-shard search budget every conformance suite runs with —
/// enough MCTS to make real decisions, small enough for a 64-seed
/// property matrix.
pub fn quick_manager() -> ManagerConfig {
    ManagerConfig { mcts_iterations: 40, warm_iterations: 20, ..Default::default() }
}

/// The conformance fault layer's common shape: per-shard exponential
/// outages (MTBF 150 s, MTTR 40 s) plus throttle episodes. Suites tweak
/// correlation, throttle duration, or the seed via struct update.
pub fn base_faults(shards: usize) -> FaultSpec {
    FaultSpec {
        shards,
        mtbf: 150.0,
        mttr: 40.0,
        throttle_rate: 1.0 / 120.0,
        ..Default::default()
    }
}

/// One cell of the conformance matrix: a seeded load scenario. The
/// defaults reproduce the rates the original `parallel.rs`/`telemetry.rs`
/// scaffolding used; `rates` lets a suite offer heavier traffic.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub seed: u64,
    /// Arrival process selector: 0 = Poisson, 1 = bursty OnOff,
    /// 2 = Diurnal.
    pub process_idx: usize,
    pub poisson_rate: f64,
    pub burst_rate: f64,
    pub diurnal_rate: f64,
    pub faults: Option<FaultSpec>,
    pub zipf: bool,
}

impl Scenario {
    pub fn new(seed: u64, process_idx: usize) -> Self {
        Self {
            seed,
            process_idx,
            poisson_rate: 1.0 / 18.0,
            burst_rate: 0.2,
            diurnal_rate: 1.0 / 15.0,
            faults: None,
            zipf: false,
        }
    }

    /// Overrides the per-process arrival rates (Poisson rate, OnOff
    /// burst rate, Diurnal mean rate).
    pub fn rates(mut self, poisson: f64, burst: f64, diurnal: f64) -> Self {
        self.poisson_rate = poisson;
        self.burst_rate = burst;
        self.diurnal_rate = diurnal;
        self
    }

    /// Adds a fault layer (see [`base_faults`]).
    pub fn faults(mut self, faults: FaultSpec) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Skews model popularity (Zipf exponent 1.0) instead of uniform.
    pub fn zipf(mut self, zipf: bool) -> Self {
        self.zipf = zipf;
        self
    }

    /// The scenario's arrival process.
    pub fn process(&self) -> ArrivalProcess {
        match self.process_idx {
            0 => ArrivalProcess::Poisson { rate: self.poisson_rate },
            1 => ArrivalProcess::OnOff {
                burst_rate: self.burst_rate,
                idle_rate: 0.01,
                mean_burst: 30.0,
                mean_idle: 60.0,
            },
            _ => ArrivalProcess::Diurnal {
                mean_rate: self.diurnal_rate,
                amplitude: 0.8,
                period: 120.0,
            },
        }
    }

    /// The full load spec: a 240 s horizon, 90 s mean residency, and
    /// priority churn every ~80 s (the churn exercises the widest
    /// barrier — every shard re-maps on a `SetPriorities` event — and,
    /// under the epoch log, the speculation flush).
    pub fn load(&self) -> LoadSpec {
        LoadSpec {
            horizon: 240.0,
            process: self.process(),
            mean_lifetime: 90.0,
            priority_churn_rate: 1.0 / 80.0,
            seed: self.seed,
            faults: self.faults.clone(),
            popularity: if self.zipf {
                Popularity::Zipf { exponent: 1.0 }
            } else {
                Popularity::Uniform
            },
            ..Default::default()
        }
    }
}

/// The outcome bit-compare every conformance suite shares: structural
/// equality of placements/metrics/timelines, then a belt-and-braces
/// `to_bits` comparison of every float payload (`==` treats `0.0` and
/// `-0.0` as equal; bit patterns do not).
pub fn assert_identical(reference: &FleetOutcome, candidate: &FleetOutcome, label: &str) {
    assert_eq!(candidate.placements, reference.placements, "{label}: placement log diverged");
    assert_eq!(candidate.metrics, reference.metrics, "{label}: metrics diverged");
    assert_eq!(candidate.timelines, reference.timelines, "{label}: timelines diverged");
    for (a, b) in reference.timelines.iter().flatten().zip(candidate.timelines.iter().flatten())
    {
        for (x, y) in a.potentials.iter().zip(&b.potentials) {
            assert_eq!(x.to_bits(), y.to_bits(), "{label}: potential bits diverged");
        }
        for (x, y) in a.throughputs.iter().zip(&b.throughputs) {
            assert_eq!(x.to_bits(), y.to_bits(), "{label}: throughput bits diverged");
        }
        assert_eq!(
            a.migration_stall.to_bits(),
            b.migration_stall.to_bits(),
            "{label}: stall bits diverged"
        );
    }
    for (a, b) in reference.placements.iter().zip(&candidate.placements) {
        assert_eq!(
            a.predicted_delta.to_bits(),
            b.predicted_delta.to_bits(),
            "{label}: predicted-delta bits diverged"
        );
    }
    assert_eq!(
        reference.metrics.evacuation_stall_seconds.to_bits(),
        candidate.metrics.evacuation_stall_seconds.to_bits(),
        "{label}: evacuation stall bits diverged"
    );
}

/// The trace-replay check: records `spec`'s stream, round-trips it
/// through JSONL (the parse must be exact, and fault traffic must be
/// recorded as a version-3 trace), replays it on the suite's candidate
/// `fleet`, and bit-compares against `reference`.
pub fn assert_replay_identical<O: ThroughputOracle>(
    spec: &LoadSpec,
    shards: usize,
    label: &str,
    reference: &FleetOutcome,
    fleet: FleetRuntime<'_, O>,
) {
    let events = generate(spec);
    let faulted = events.iter().any(|e| {
        matches!(
            e,
            FleetEvent::ShardDown { .. }
                | FleetEvent::ShardUp { .. }
                | FleetEvent::ShardThrottle { .. }
        )
    });
    let trace = Trace::new(TraceMeta::new(shards, spec.horizon, spec.seed, label), events);
    let jsonl = trace.to_jsonl();
    if faulted {
        assert!(
            jsonl.lines().next().unwrap().contains("\"rankmap_fleet_trace\":3"),
            "{label}: a faulted stream must be recorded as a version-3 trace"
        );
    }
    let parsed = Trace::from_jsonl(&jsonl).expect("trace parses");
    assert_eq!(&parsed, &trace, "{label}: events must survive JSONL exactly");
    let replayed = fleet.execute_trace(&parsed);
    assert_identical(reference, &replayed, label);
}
