//! Trace replay determinism: a recorded run and its replay from the JSONL
//! trace must agree bit-for-bit — event streams, placement log, fleet
//! metrics, and the per-shard timelines behind them.

use rankmap_core::manager::ManagerConfig;
use rankmap_core::oracle::AnalyticalOracle;
use rankmap_fleet::{
    generate, ArrivalProcess, FleetConfig, FleetRuntime, LoadSpec, Trace, TraceMeta,
};
use rankmap_platform::Platform;

fn bursty_spec() -> LoadSpec {
    LoadSpec {
        horizon: 600.0,
        process: ArrivalProcess::OnOff {
            burst_rate: 0.25,
            idle_rate: 0.01,
            mean_burst: 40.0,
            mean_idle: 120.0,
        },
        mean_lifetime: 180.0,
        priority_churn_rate: 1.0 / 250.0,
        seed: 17,
        ..Default::default()
    }
}

fn quick_config() -> FleetConfig {
    FleetConfig {
        manager: ManagerConfig { mcts_iterations: 60, warm_iterations: 30, ..Default::default() },
        max_per_shard: 3,
        ..Default::default()
    }
}

#[test]
fn bursty_run_replays_bit_identically_from_its_trace() {
    let platform = Platform::orange_pi_5();
    let oracle = AnalyticalOracle::new(&platform);
    let spec = bursty_spec();
    let shards = 2;

    // Record: generate the load, run it, and write the trace.
    let events = generate(&spec);
    assert!(events.len() > 10, "the bursty spec must offer real load");
    let trace = Trace::new(
        TraceMeta::new(shards, spec.horizon, spec.seed, "bursty-replay-test"),
        events.clone(),
    );
    let jsonl = trace.to_jsonl();
    let recorded = FleetRuntime::homogeneous(&platform, &oracle, shards, quick_config())
        .execute(&events, spec.horizon);

    // Replay: parse the trace back and run a fresh fleet from it.
    let parsed = Trace::from_jsonl(&jsonl).expect("trace parses");
    assert_eq!(parsed.events, events, "the event stream must survive JSONL exactly");
    let replayed = FleetRuntime::homogeneous(&platform, &oracle, shards, quick_config())
        .execute_trace(&parsed);

    assert_eq!(
        replayed.metrics, recorded.metrics,
        "fleet metrics must replay bit-identically"
    );
    assert_eq!(
        replayed.placements, recorded.placements,
        "every admission/placement decision must replay identically"
    );
    assert_eq!(
        replayed.timelines, recorded.timelines,
        "per-shard timelines must replay identically"
    );
    // The run did something worth replaying.
    assert!(recorded.metrics.admitted > 0);
    assert!(recorded.metrics.aggregate_potential_seconds > 0.0);
}
