//! Telemetry lives strictly off the decision path: with it enabled or
//! disabled, every deterministic output of a fleet run — the placement
//! log, `FleetMetrics`, and every per-shard timeline — must be
//! **bit-identical**, across seeds × load shapes × fault schedules ×
//! executors (`Threads(n)` *and* the epoch-log `Async` executor). This
//! is the companion property to `tests/parallel.rs`: threading is an
//! execution strategy, telemetry is an observation strategy, and neither
//! may be a policy. The scenario matrix and bit-compare come from the
//! shared conformance harness (`tests/common/mod.rs`).
//!
//! The suite also sanity-checks the snapshot itself: counters that must
//! agree with the deterministic metrics, the epoch-log ride-alongs
//! (per-shard staleness gauges, revalidation counters), flight-recorder
//! causality, and byte-stable exports on replay.

mod common;

use common::{assert_identical, base_faults, quick_manager, Scenario};
use proptest::prelude::*;
use rankmap_core::oracle::AnalyticalOracle;
use rankmap_fleet::{
    generate, FaultSpec, FleetConfig, FleetOutcome, FleetRuntime, LoadSpec, Parallelism,
    TelemetrySpec,
};
use rankmap_platform::Platform;

fn config(parallelism: Parallelism, telemetry: TelemetrySpec) -> FleetConfig {
    FleetConfig {
        manager: quick_manager(),
        max_per_shard: 3,
        // Eager rebalancing and the overload guard keep every
        // instrumented path (migrations, sheds, health scans) in play.
        rebalance_threshold: 0.6,
        rebalance_margin: 0.02,
        overload_guard: 0.2,
        retry_limit: 1,
        parallelism,
        telemetry,
        ..Default::default()
    }
}

fn load(seed: u64, process_idx: usize, faults: bool) -> LoadSpec {
    let mut scenario = Scenario::new(seed, process_idx);
    if faults {
        scenario = scenario.faults(FaultSpec { seed: seed ^ 0x5EED, ..base_faults(3) });
    }
    scenario.load()
}

fn run(spec: &LoadSpec, parallelism: Parallelism, telemetry: TelemetrySpec) -> FleetOutcome {
    let platform = Platform::orange_pi_5();
    let oracle = AnalyticalOracle::new(&platform);
    let events = generate(spec);
    FleetRuntime::homogeneous(&platform, &oracle, 3, config(parallelism, telemetry))
        .execute(&events, spec.horizon)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The headline property: telemetry on (even with wall-clock stage
    /// timing) never changes a decision — bit-identical placements,
    /// metrics, and timelines versus the telemetry-off reference, under
    /// the sequential, threaded, and epoch-log async executors, with and
    /// without fault injection.
    #[test]
    fn telemetry_never_changes_a_decision(
        seed in 0u64..64,
        process_idx in 0usize..3,
        faults in any::<bool>(),
    ) {
        let spec = load(seed, process_idx, faults);
        let reference = run(&spec, Parallelism::Sequential, TelemetrySpec::default());
        prop_assert!(reference.metrics.offered > 0);
        prop_assert!(reference.telemetry.is_none(), "disabled telemetry must cost nothing");
        let async4 = Parallelism::Async { workers: 4, max_epoch_lag: 3, apply_lanes: false };
        let lanes4 = Parallelism::Async { workers: 4, max_epoch_lag: 3, apply_lanes: true };
        for (label, parallelism, telemetry) in [
            ("seq+on", Parallelism::Sequential, TelemetrySpec::on()),
            ("seq+wall", Parallelism::Sequential, TelemetrySpec::on().with_wall_clock()),
            ("thr4+on", Parallelism::Threads(4), TelemetrySpec::on()),
            ("thr4+off", Parallelism::Threads(4), TelemetrySpec::default()),
            ("async4+on", async4, TelemetrySpec::on()),
            ("async4+off", async4, TelemetrySpec::default()),
            ("lanes4+on", lanes4, TelemetrySpec::on()),
            ("lanes4+off", lanes4, TelemetrySpec::default()),
        ] {
            let candidate = run(&spec, parallelism, telemetry);
            assert_identical(&reference, &candidate, &format!("{label} seed {seed}"));
            prop_assert_eq!(candidate.telemetry.is_some(), telemetry.enabled);
        }
    }
}

/// The snapshot's deterministic counters must agree with the run's own
/// `FleetMetrics`, and the registry/flight exports must be byte-stable
/// across a replay of the same stream.
#[test]
fn snapshot_counters_agree_with_metrics_and_exports_replay_byte_stable() {
    let spec = load(7, 0, true);
    let outcome = run(&spec, Parallelism::Threads(2), TelemetrySpec::on());
    let snap = outcome.telemetry.as_ref().expect("telemetry enabled");
    let m = &outcome.metrics;
    let c = |k: &str| snap.registry.counter(k);
    assert_eq!(c("fleet_admitted_total"), m.admitted);
    assert_eq!(c("fleet_rejected_total"), m.rejected);
    assert_eq!(c("fleet_migrations_total"), m.migrations);
    assert_eq!(c("fleet_departed_total"), m.departed);
    assert_eq!(c("fleet_evacuated_total"), m.evacuated);
    assert_eq!(c("fleet_shed_total"), m.shed);
    assert_eq!(c("fleet_deferred_total"), m.retries);
    // Stage entry counters: at least one probe-build barrier per offered
    // arrival, and the apply stage entered once per admission.
    assert!(c("fleet_stage_entered_total{stage=\"probe_build\"}") >= m.offered);
    assert_eq!(c("fleet_stage_entered_total{stage=\"apply\"}"), m.admitted);
    // Wall timing stayed off: deterministic registry only.
    assert!(
        snap.registry
            .histograms()
            .all(|(k, _)| !k.starts_with("stage_wall_seconds")),
        "wall histograms must be gated behind wall_clock"
    );
    // Cache overlays are present (the run exercised probes and mapping).
    assert!(
        c("fleet_probe_memo_hits_total") + c("fleet_probe_memo_misses_total") > 0,
        "probe memo counters missing from the overlay"
    );
    assert!(
        c("fleet_plan_cache_hits_total") + c("fleet_plan_cache_misses_total") > 0,
        "plan cache counters missing from the overlay"
    );
    // Byte-stable exports: an identical replay renders identical text
    // for every deterministic family. The `*_wall_seconds` overlays are
    // the declared wall-clock exception and get filtered out.
    let deterministic = |text: &str| -> String {
        text.lines()
            .filter(|l| !l.contains("wall_seconds"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let replay = run(&spec, Parallelism::Sequential, TelemetrySpec::on());
    let replay_snap = replay.telemetry.as_ref().expect("telemetry enabled");
    assert_eq!(
        deterministic(&snap.to_prometheus()),
        deterministic(&replay_snap.to_prometheus()),
        "Prometheus export must be byte-stable across replays"
    );
    assert_eq!(
        deterministic(&snap.to_jsonl()),
        deterministic(&replay_snap.to_jsonl())
    );
    assert_eq!(
        snap.flight_jsonl(),
        replay_snap.flight_jsonl(),
        "flight-recorder export must be byte-stable across replays"
    );
}

/// The epoch-log ride-alongs: under `Parallelism::Async` the snapshot
/// carries the speculation accounting — batches, probes built ahead,
/// reuse/revalidation/refresh counters that reconcile, the `speculate`
/// stage, and a per-shard `fleet_shard_epoch_lag` gauge — and none of it
/// exists under the barrier executors, where no speculation runs.
#[test]
fn epoch_log_staleness_telemetry_rides_along() {
    let spec = load(21, 0, true);
    let outcome = run(
        &spec,
        Parallelism::Async { workers: 2, max_epoch_lag: 4, apply_lanes: false },
        TelemetrySpec::on(),
    );
    let snap = outcome.telemetry.as_ref().expect("telemetry enabled");
    let c = |k: &str| snap.registry.counter(k);
    assert!(c("fleet_spec_batches_total") > 0, "async runs must speculate");
    assert!(c("fleet_spec_probes_total") > 0);
    assert!(c("fleet_stage_entered_total{stage=\"speculate\"}") > 0);
    // Every speculated probe that reached a decision was either reused
    // (possibly after revalidation) or refreshed; revalidations and
    // refreshes are mutually exclusive per probe, so neither can exceed
    // what was consulted.
    let reused = c("fleet_spec_probes_reused_total");
    let refreshed = c("fleet_staleness_refreshes_total");
    assert!(reused > 0, "a 240 s run must reuse some speculated probes");
    assert!(
        c("fleet_staleness_revalidations_total") <= reused + refreshed,
        "revalidations count a subset of consulted probes"
    );
    // The per-shard staleness gauge is sampled for every shard.
    for s in 0..3 {
        let key = format!("fleet_shard_epoch_lag{{shard=\"{s}\"}}");
        assert!(
            snap.registry.gauge(&key).is_some(),
            "missing epoch-lag gauge for shard {s}"
        );
    }
    // Barrier executors never speculate: the ride-along stays silent.
    let barrier = run(&spec, Parallelism::Threads(2), TelemetrySpec::on());
    let bsnap = barrier.telemetry.as_ref().expect("telemetry enabled");
    assert_eq!(bsnap.registry.counter("fleet_spec_batches_total"), 0);
    assert_eq!(bsnap.registry.counter("fleet_staleness_revalidations_total"), 0);
    assert_eq!(bsnap.registry.counter("fleet_staleness_refreshes_total"), 0);
}

/// The apply-lane ride-alongs: with `apply_lanes: true` the snapshot
/// carries the lane accounting — batch/op counters, the occupancy gauge,
/// the split apply stages — and the speculation-waste counter reconciles
/// with what the validator refreshed and the `SetPriorities` flushes
/// dropped. With lanes off, the lane families stay silent.
#[test]
fn apply_lane_telemetry_rides_along() {
    let spec = load(21, 0, true);
    let outcome = run(
        &spec,
        Parallelism::Async { workers: 2, max_epoch_lag: 4, apply_lanes: true },
        TelemetrySpec::on(),
    );
    let snap = outcome.telemetry.as_ref().expect("telemetry enabled");
    let c = |k: &str| snap.registry.counter(k);
    assert!(c("fleet_lane_batches_total") > 0, "lane runs must batch applies");
    assert!(c("fleet_lane_ops_total") > 0, "lane batches must carry shard ops");
    assert!(
        c("fleet_stage_entered_total{stage=\"apply_prepare\"}") > 0,
        "the out-of-order prepare stage must be entered"
    );
    assert!(
        c("fleet_stage_entered_total{stage=\"apply_commit\"}") > 0,
        "the in-order commit stage must be entered"
    );
    assert!(
        snap.registry.gauge("fleet_lane_occupancy").is_some(),
        "lane flushes must publish the occupancy gauge"
    );
    // Waste accounting: every wasted probe was either refreshed by the
    // validator, masked/skipped at admission, or dropped by a flush — so
    // waste at least covers the refreshes.
    assert!(
        c("fleet_spec_probes_wasted_total") >= c("fleet_staleness_refreshes_total"),
        "refreshed probes are wasted speculation"
    );
    // Lanes off: the same stream publishes no lane families.
    let serial_apply = run(
        &spec,
        Parallelism::Async { workers: 2, max_epoch_lag: 4, apply_lanes: false },
        TelemetrySpec::on(),
    );
    let ssnap = serial_apply.telemetry.as_ref().expect("telemetry enabled");
    assert_eq!(ssnap.registry.counter("fleet_lane_batches_total"), 0);
    assert_eq!(ssnap.registry.counter("fleet_lane_ops_total"), 0);
    assert_eq!(ssnap.registry.counter("fleet_lane_discards_total"), 0);
    assert!(ssnap.registry.gauge("fleet_lane_occupancy").is_none());
}

/// Flight-recorder causality: every `evacuate`/`shed` record of an
/// outage links back (via `cause`) to a retained `shard_down` record.
#[test]
fn flight_records_link_outcomes_to_their_cause() {
    let spec = load(13, 1, true);
    let outcome = run(&spec, Parallelism::Sequential, TelemetrySpec::on());
    let snap = outcome.telemetry.as_ref().expect("telemetry enabled");
    let downs: Vec<u64> = snap
        .recorder
        .records()
        .filter(|r| r.kind == "shard_down")
        .map(|r| r.seq)
        .collect();
    assert!(
        outcome.metrics.failures_injected == 0 || !downs.is_empty(),
        "injected failures must surface as shard_down records"
    );
    let mut linked = 0;
    for r in snap.recorder.records() {
        if matches!(r.kind, "evacuate" | "shed") {
            let cause = r.cause.expect("evacuation outcomes must carry a cause");
            assert!(downs.contains(&cause), "cause must be a shard_down record");
            let origin = snap.recorder.find(cause).expect("cause retained");
            assert_eq!(origin.kind, "shard_down");
            assert!(origin.at <= r.at, "causes precede consequences");
            linked += 1;
        }
    }
    if snap.recorder.dropped() == 0 {
        let evac_records =
            snap.recorder.records().filter(|r| r.kind == "evacuate").count() as u64;
        assert_eq!(
            evac_records, outcome.metrics.evacuated,
            "one evacuate record per evacuation"
        );
    }
    assert!(
        outcome.metrics.evacuated == 0 || linked > 0,
        "an evacuating run must produce linked records"
    );
}

/// Per-shard ring series: sampled on the simulation clock, bounded by
/// the configured capacity, and time-monotone.
#[test]
fn shard_series_are_sim_clock_sampled_and_bounded() {
    let spec = load(3, 2, false);
    let telemetry = TelemetrySpec { series_capacity: 4, ..TelemetrySpec::on() };
    let outcome = run(&spec, Parallelism::Sequential, telemetry);
    let snap = outcome.telemetry.as_ref().expect("telemetry enabled");
    assert_eq!(snap.series.len(), 3, "one series per shard");
    assert!(
        snap.series.iter().any(|s| !s.is_empty()),
        "a 240s run at sample_dt=30 must sample"
    );
    for series in &snap.series {
        assert!(series.len() <= 4, "ring capacity must bound retention");
        for pair in series.windows(2) {
            assert!(pair[0].0 <= pair[1].0, "sample times must be monotone");
        }
        for (at, sample) in series {
            assert!((0.0..spec.horizon).contains(at), "sampled on the sim clock");
            assert!(sample.derate > 0.0 && sample.derate <= 1.0);
        }
    }
}
