//! Bit-identity of the placement index: `indexed_placement: true` (the
//! default — equivalence-class representative probing plus the O(log S)
//! health index) must reproduce the full-scan reference **byte for
//! byte** — placements, metrics, and per-shard timelines — across
//! seeds, every arrival process (including Zipf-skewed popularity),
//! homogeneous and mixed fleets, thread counts, and fault/evacuation
//! traffic.
//!
//! This is the load-bearing guarantee of the index layer: like the
//! executor's threading, indexing is an execution strategy, never a
//! policy. Two shards with equal class keys build bit-identical probes,
//! so probing one representative and broadcasting its score cannot
//! change any argmax downstream; the health BTree's first element *is*
//! the scan's `min_by(total_cmp)` answer (see `rankmap_fleet::index`).
//! The scenario matrix, bit-compare, and replay check come from the
//! shared conformance harness (`tests/common/mod.rs`).

mod common;

use common::{assert_identical, assert_replay_identical, base_faults, quick_manager, Scenario};
use proptest::prelude::*;
use rankmap_core::oracle::AnalyticalOracle;
use rankmap_fleet::{
    generate, FaultSpec, FleetConfig, FleetOutcome, FleetRuntime, FleetSpec, LoadSpec,
    Parallelism, ShardSpec,
};
use rankmap_platform::Platform;

const SHARDS: usize = 4;

fn config(indexed: bool, parallelism: Parallelism) -> FleetConfig {
    FleetConfig {
        manager: quick_manager(),
        max_per_shard: 3,
        // Exercise every index consumer: rebalancing (health reads),
        // the overload guard, and retries.
        rebalance_threshold: 0.55,
        rebalance_margin: 0.02,
        overload_guard: 0.15,
        retry_limit: 1,
        indexed_placement: indexed,
        parallelism,
        ..Default::default()
    }
}

fn load(seed: u64, process_idx: usize, faults: bool, zipf: bool) -> LoadSpec {
    let mut scenario =
        Scenario::new(seed, process_idx).rates(1.0 / 16.0, 0.25, 1.0 / 14.0).zipf(zipf);
    if faults {
        scenario = scenario.faults(FaultSpec { correlation: 0.4, ..base_faults(SHARDS) });
    }
    scenario.load()
}

fn run(spec: &LoadSpec, indexed: bool, parallelism: Parallelism) -> FleetOutcome {
    let platform = Platform::orange_pi_5();
    let oracle = AnalyticalOracle::new(&platform);
    let events = generate(spec);
    FleetRuntime::homogeneous(&platform, &oracle, SHARDS, config(indexed, parallelism))
        .execute(&events, spec.horizon)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The headline property: indexed and full-scan placement agree byte
    /// for byte across seeds, load shapes (uniform and Zipf-skewed),
    /// fault layers, and executor widths — and the recorded trace
    /// replays bit-for-bit under the indexed executor.
    #[test]
    fn indexed_reproduces_full_scan_bit_for_bit(
        seed in 0u64..64,
        process_idx in 0usize..3,
        faults in any::<bool>(),
        zipf in any::<bool>(),
    ) {
        let spec = load(seed, process_idx, faults, zipf);
        let reference = run(&spec, false, Parallelism::Sequential);
        prop_assert!(reference.metrics.offered > 0);
        for (indexed, parallelism) in [
            (true, Parallelism::Sequential),
            (true, Parallelism::Threads(4)),
            (false, Parallelism::Threads(4)),
        ] {
            let candidate = run(&spec, indexed, parallelism);
            assert_identical(
                &reference,
                &candidate,
                &format!("indexed={indexed} {parallelism:?} seed {seed}"),
            );
        }
        // Trace replay under the indexed executor stays exact.
        let platform = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&platform);
        assert_replay_identical(
            &spec,
            SHARDS,
            &format!("indexed-replay seed {seed}"),
            &reference,
            FleetRuntime::homogeneous(
                &platform,
                &oracle,
                SHARDS,
                config(true, Parallelism::Threads(2)),
            ),
        );
    }
}

/// The mixed-fleet variant: two platform groups mean two probe classes
/// can never merge (group is part of the class key) — indexed placement
/// across heterogeneous boards still matches the scan exactly.
#[test]
fn mixed_fleet_indexed_matches_scan() {
    let orange = Platform::orange_pi_5();
    let jetson = Platform::jetson_orin_nx();
    let orange_oracle = AnalyticalOracle::new(&orange);
    let jetson_oracle = AnalyticalOracle::new(&jetson);
    let spec = load(11, 1, true, true);
    let events = generate(&spec);
    let fleet = |indexed, parallelism| {
        FleetRuntime::new(
            &FleetSpec::new(vec![
                ShardSpec::new(&orange, &orange_oracle, 2),
                ShardSpec::new(&jetson, &jetson_oracle, 2),
            ]),
            config(indexed, parallelism),
        )
        .execute(&events, spec.horizon)
    };
    let reference = fleet(false, Parallelism::Sequential);
    assert!(reference.metrics.offered > 0);
    for (indexed, parallelism) in [
        (true, Parallelism::Sequential),
        (true, Parallelism::Threads(4)),
    ] {
        let candidate = fleet(indexed, parallelism);
        assert_identical(&reference, &candidate, &format!("mixed indexed={indexed}"));
    }
}

/// Non-fused scoring (the serial per-shard probe fold) composes with the
/// index too — the broadcast happens on the score vector either way.
#[test]
fn non_fused_indexed_matches_scan() {
    let spec = load(5, 0, false, false);
    let platform = Platform::orange_pi_5();
    let oracle = AnalyticalOracle::new(&platform);
    let events = generate(&spec);
    let run = |indexed| {
        FleetRuntime::homogeneous(
            &platform,
            &oracle,
            SHARDS,
            FleetConfig { fused_scoring: false, ..config(indexed, Parallelism::Sequential) },
        )
        .execute(&events, spec.horizon)
    };
    assert_identical(&run(false), &run(true), "non-fused indexed");
}
