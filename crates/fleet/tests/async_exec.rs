//! Determinism of the barrier-free epoch-log executor:
//! `Parallelism::Async { workers, max_epoch_lag, apply_lanes }` must
//! produce placements, metrics, and per-shard timelines **bit-identical**
//! to `Parallelism::Sequential` — for *any* worker count, *any*
//! staleness bound, and with the out-of-order apply-lane scheduler on or
//! off — across seeds, load shapes, fault schedules, and Zipf-skewed
//! popularity, and recorded traces must replay bit-for-bit *under the
//! epoch-log executor*.
//!
//! This is the load-bearing guarantee of the epoch log: speculation is
//! an execution strategy, never a policy. Probes scored against a
//! slightly-stale shard snapshot are only reused when apply-time
//! validation proves the snapshot is (still, or again) the live shard
//! state — epoch unchanged, or lag within `max_epoch_lag` with an equal
//! placement class key — and the class key pins every `build_probe`
//! input, so a reused probe is bit-identical to the one a fresh build
//! would produce (see `rankmap_fleet::executor`'s determinism argument
//! and `tests/async_validation.rs` for the adversarial cases). The
//! scenario matrix, bit-compare, and replay check come from the shared
//! conformance harness (`tests/common/mod.rs`).

mod common;

use common::{assert_identical, assert_replay_identical, base_faults, quick_manager, Scenario};
use proptest::prelude::*;
use rankmap_core::oracle::AnalyticalOracle;
use rankmap_fleet::{
    generate, FaultSpec, FleetConfig, FleetConfigError, FleetOutcome, FleetRuntime, FleetSpec,
    LoadSpec, Parallelism, ShardSpec, LOOKAHEAD_BOUND,
};
use rankmap_platform::Platform;

const SHARDS: usize = 3;

fn config(parallelism: Parallelism) -> FleetConfig {
    FleetConfig {
        manager: quick_manager(),
        max_per_shard: 3,
        // Eager rebalancing, retries, and the overload guard keep every
        // epoch-bumping path (admissions, migrations, sheds) in play
        // between speculation and apply.
        rebalance_threshold: 0.6,
        rebalance_margin: 0.02,
        overload_guard: 0.15,
        retry_limit: 1,
        parallelism,
        ..Default::default()
    }
}

fn load(seed: u64, process_idx: usize, faults: bool, zipf: bool) -> LoadSpec {
    let mut scenario = Scenario::new(seed, process_idx).zipf(zipf);
    if faults {
        scenario = scenario.faults(FaultSpec { seed: seed ^ 0xA57C, ..base_faults(SHARDS) });
    }
    scenario.load()
}

fn run(platform: &Platform, spec: &LoadSpec, parallelism: Parallelism) -> FleetOutcome {
    let oracle = AnalyticalOracle::new(platform);
    let events = generate(spec);
    FleetRuntime::homogeneous(platform, &oracle, SHARDS, config(parallelism))
        .execute(&events, spec.horizon)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline property: the epoch-log executor reproduces the
    /// sequential reference byte for byte for every worker count ×
    /// staleness bound — `max_epoch_lag: 0` (the degenerate barrier
    /// schedule) through deep lookahead windows — with the apply-lane
    /// scheduler on or off, across seeds, load shapes, fault layers, and
    /// popularity skew, and the recorded trace replays bit-for-bit under
    /// the epoch-log executor itself.
    #[test]
    fn async_reproduces_sequential_bit_for_bit(
        seed in 0u64..64,
        process_idx in 0usize..3,
        faults in any::<bool>(),
        zipf in any::<bool>(),
        workers in (0usize..3).prop_map(|i| [1usize, 2, 4][i]),
        max_epoch_lag in (0usize..5).prop_map(|i| [0u64, 1, 2, 5, 16][i]),
        apply_lanes in any::<bool>(),
    ) {
        let platform = Platform::orange_pi_5();
        let spec = load(seed, process_idx, faults, zipf);
        let reference = run(&platform, &spec, Parallelism::Sequential);
        prop_assert!(reference.metrics.offered > 0);
        let parallelism = Parallelism::Async { workers, max_epoch_lag, apply_lanes };
        let candidate = run(&platform, &spec, parallelism);
        assert_identical(
            &reference,
            &candidate,
            &format!("Async{{{workers},{max_epoch_lag},lanes:{apply_lanes}}} seed {seed}"),
        );
        // Trace replay under the epoch-log executor: record the stream
        // (fault traffic upgrades the header to v3), parse it back, and
        // re-run it speculatively — still bit-identical.
        let oracle = AnalyticalOracle::new(&platform);
        assert_replay_identical(
            &spec,
            SHARDS,
            &format!("async-replay seed {seed}"),
            &reference,
            FleetRuntime::homogeneous(&platform, &oracle, SHARDS, config(parallelism)),
        );
    }
}

/// The deepest admissible staleness bound is still safe: at
/// `max_epoch_lag: LOOKAHEAD_BOUND` (the largest value construction
/// accepts) the window buffers its full clamp, and validation never
/// trusts a stale probe whose class key stopped matching — the reference
/// is reproduced exactly, lanes on or off.
#[test]
fn lag_at_the_lookahead_bound_is_still_bit_identical() {
    let platform = Platform::orange_pi_5();
    for (seed, apply_lanes) in [(2u64, false), (19, true)] {
        let spec = load(seed, seed as usize % 3, true, false);
        let reference = run(&platform, &spec, Parallelism::Sequential);
        assert!(reference.metrics.offered > 0);
        let candidate = run(
            &platform,
            &spec,
            Parallelism::Async { workers: 4, max_epoch_lag: LOOKAHEAD_BOUND, apply_lanes },
        );
        assert_identical(
            &reference,
            &candidate,
            &format!("Async{{4,BOUND,lanes:{apply_lanes}}} seed {seed}"),
        );
    }
}

/// A staleness bound beyond the lookahead clamp could never be exercised
/// — the window simply cannot lag that far — so construction rejects it
/// loudly instead of capping it silently.
#[test]
fn lag_beyond_the_lookahead_bound_is_rejected_at_construction() {
    let config = FleetConfig {
        parallelism: Parallelism::Async {
            workers: 4,
            max_epoch_lag: u64::MAX,
            apply_lanes: false,
        },
        ..Default::default()
    };
    let err = config.validate().unwrap_err();
    assert!(matches!(
        err,
        FleetConfigError::MaxEpochLagBeyondLookahead { max_epoch_lag: u64::MAX }
    ));
    let platform = Platform::orange_pi_5();
    let oracle = AnalyticalOracle::new(&platform);
    let spec = FleetSpec::homogeneous(&platform, &oracle, SHARDS);
    let refused = FleetRuntime::try_new(&spec, config);
    assert!(
        refused.is_err(),
        "fleet construction must surface the config error, not cap the lag"
    );
}

/// Full-scan placement (`indexed_placement: false`) composes with the
/// epoch log too: without the representative mask every shard gets a
/// speculative entry, and validation alone keeps the fan exact.
#[test]
fn unindexed_async_matches_sequential() {
    let platform = Platform::orange_pi_5();
    let oracle = AnalyticalOracle::new(&platform);
    let spec = load(7, 1, true, true);
    let events = generate(&spec);
    let run = |parallelism| {
        FleetRuntime::homogeneous(
            &platform,
            &oracle,
            SHARDS,
            FleetConfig { indexed_placement: false, ..config(parallelism) },
        )
        .execute(&events, spec.horizon)
    };
    let reference = run(Parallelism::Sequential);
    assert!(reference.metrics.offered > 0);
    for apply_lanes in [false, true] {
        let candidate =
            run(Parallelism::Async { workers: 4, max_epoch_lag: 3, apply_lanes });
        assert_identical(
            &reference,
            &candidate,
            &format!("unindexed Async{{4,3,lanes:{apply_lanes}}}"),
        );
    }
}

/// The mixed-fleet variant: two platform groups (two fused-scoring
/// domains, two oracles, two probe classes that can never merge) under
/// the epoch-log executor still reproduce the sequential reference
/// exactly.
#[test]
fn mixed_fleet_async_matches_sequential() {
    let orange = Platform::orange_pi_5();
    let jetson = Platform::jetson_orin_nx();
    let orange_oracle = AnalyticalOracle::new(&orange);
    let jetson_oracle = AnalyticalOracle::new(&jetson);
    let spec = load(11, 1, true, false);
    let events = generate(&spec);
    let fleet = |parallelism| {
        FleetRuntime::new(
            &FleetSpec::new(vec![
                ShardSpec::new(&orange, &orange_oracle, 2),
                ShardSpec::new(&jetson, &jetson_oracle, 2),
            ]),
            config(parallelism),
        )
        .execute(&events, spec.horizon)
    };
    let reference = fleet(Parallelism::Sequential);
    assert!(reference.metrics.offered > 0);
    for (workers, max_epoch_lag, apply_lanes) in [(2usize, 1u64, false), (4, 8, true)] {
        let candidate = fleet(Parallelism::Async { workers, max_epoch_lag, apply_lanes });
        assert_identical(
            &reference,
            &candidate,
            &format!("mixed Async{{{workers},{max_epoch_lag},lanes:{apply_lanes}}}"),
        );
    }
}

/// The non-fused (serial per-shard scoring) path is covered too: the
/// speculation fan feeds the same per-shard probes either way, so fused
/// off + epoch log must equal fused off + sequential.
#[test]
fn non_fused_scoring_is_speculation_invariant() {
    let platform = Platform::orange_pi_5();
    let oracle = AnalyticalOracle::new(&platform);
    let spec = load(3, 0, false, false);
    let events = generate(&spec);
    let run = |parallelism| {
        FleetRuntime::homogeneous(
            &platform,
            &oracle,
            SHARDS,
            FleetConfig { fused_scoring: false, ..config(parallelism) },
        )
        .execute(&events, spec.horizon)
    };
    let reference = run(Parallelism::Sequential);
    for apply_lanes in [false, true] {
        let candidate =
            run(Parallelism::Async { workers: 4, max_epoch_lag: 4, apply_lanes });
        assert_identical(
            &reference,
            &candidate,
            &format!("non-fused Async{{4,4,lanes:{apply_lanes}}}"),
        );
    }
}
