//! Chaos properties: instance accounting, executor determinism, and trace
//! replay under injected faults.
//!
//! Three load-bearing guarantees of the fault-tolerance layer, checked
//! across seeds × load shapes × fault schedules (the matrix, bit-compare,
//! and replay check come from the shared conformance harness in
//! `tests/common/mod.rs`):
//!
//! 1. **Accounting.** Every admitted instance ends in exactly one
//!    terminal state — departed, still live (evacuated instances stay
//!    live on their new shard), or shed — and every offered request is
//!    either admitted or rejected. No instance is lost or duplicated by
//!    an evacuation, a retry, or an overload-guard shed.
//! 2. **Determinism.** `Parallelism::Threads(n)` reproduces the
//!    sequential reference bit-for-bit under chaos: fault handling,
//!    evacuation triage, and retries all run at event barriers, so the
//!    thread count is still an execution strategy, never a policy.
//! 3. **Replay.** A chaos run records to a version-3 trace that parses
//!    back and replays bit-identically under both executors.

mod common;

use common::{assert_identical, assert_replay_identical, base_faults, quick_manager, Scenario};
use proptest::prelude::*;
use rankmap_core::oracle::AnalyticalOracle;
use rankmap_fleet::{
    generate, FaultSpec, FleetConfig, FleetOutcome, FleetRuntime, LoadSpec, Parallelism,
};
use rankmap_platform::Platform;

const SHARDS: usize = 3;

fn config(parallelism: Parallelism) -> FleetConfig {
    FleetConfig {
        manager: quick_manager(),
        max_per_shard: 3,
        rebalance_threshold: 0.6,
        rebalance_margin: 0.02,
        // Exercise the whole robustness surface: evacuation, bounded
        // retry, and the overload guard.
        retry_limit: 2,
        retry_backoff: 15.0,
        overload_guard: 0.05,
        parallelism,
        ..Default::default()
    }
}

fn chaotic_load(seed: u64, process_idx: usize, fault_seed: u64) -> LoadSpec {
    // An aggressive fault layer: outages every ~150 s per shard plus
    // correlated joins and throttle episodes, so most runs see real
    // failures inside the horizon.
    Scenario::new(seed, process_idx)
        .rates(1.0 / 12.0, 0.2, 1.0 / 10.0)
        .faults(FaultSpec {
            correlation: 0.3,
            mean_throttle: 50.0,
            seed: fault_seed,
            ..base_faults(SHARDS)
        })
        .load()
}

fn run(platform: &Platform, spec: &LoadSpec, parallelism: Parallelism) -> FleetOutcome {
    let oracle = AnalyticalOracle::new(platform);
    let events = generate(spec);
    FleetRuntime::homogeneous(platform, &oracle, SHARDS, config(parallelism))
        .execute(&events, spec.horizon)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Accounting + determinism + replay, one chaos run at a time.
    #[test]
    fn chaos_preserves_accounting_and_determinism(
        seed in 0u64..64,
        process_idx in 0usize..3,
        fault_seed in 0u64..64,
    ) {
        let platform = Platform::orange_pi_5();
        let spec = chaotic_load(seed, process_idx, fault_seed);
        let reference = run(&platform, &spec, Parallelism::Sequential);

        // A run worth checking: load was offered and at least one fault
        // landed (the fault layer is aggressive enough that this holds
        // for every seed in the strategy ranges).
        prop_assert!(reference.metrics.offered > 0);
        prop_assert!(
            reference.metrics.failures_injected + reference.metrics.throttle_events > 0,
            "fault layer produced no faults inside the horizon"
        );

        // 1. Accounting: nothing lost, nothing duplicated.
        let m = &reference.metrics;
        prop_assert!(
            m.accounting_balances(),
            "admitted {} != departed {} + live {} + shed {} (offered {}, rejected {})",
            m.admitted, m.departed, m.live_at_end, m.shed, m.offered, m.rejected
        );
        prop_assert!(m.evacuated <= m.tier_triaged.iter().sum::<u64>());
        for tier in 0..3 {
            prop_assert!(m.tier_evacuated[tier] <= m.tier_triaged[tier]);
        }

        // 2. Determinism: threads reproduce the sequential reference.
        for n in [2usize, 4] {
            let threaded = run(&platform, &spec, Parallelism::Threads(n));
            assert_identical(&reference, &threaded, &format!("Threads({n}) seed {seed}"));
        }

        // 3. Replay: the chaos stream survives a v3 trace round-trip and
        // replays bit-identically under the parallel executor.
        let oracle = AnalyticalOracle::new(&platform);
        assert_replay_identical(
            &spec,
            SHARDS,
            &format!("chaos-replay seed {seed}"),
            &reference,
            FleetRuntime::homogeneous(&platform, &oracle, SHARDS, config(Parallelism::Threads(4))),
        );
    }
}

/// Priority-aware triage in one deterministic run: under a full outage
/// of a loaded shard, the high tier's availability is at least the low
/// tier's, and evacuations show up both in the tier ledger and as real
/// migration stalls on the destination timelines.
#[test]
fn evacuation_favors_high_priority_tiers() {
    let platform = Platform::orange_pi_5();
    let oracle = AnalyticalOracle::new(&platform);
    // Fill a 2-shard fleet, then take shard 0 down mid-run.
    let models = [
        rankmap_models::ModelId::InceptionV4,
        rankmap_models::ModelId::ResNet50,
        rankmap_models::ModelId::Vgg16,
        rankmap_models::ModelId::AlexNet,
        rankmap_models::ModelId::MobileNet,
    ];
    let mut events: Vec<rankmap_fleet::FleetEvent> = models
        .iter()
        .enumerate()
        .map(|(k, &m)| rankmap_fleet::FleetEvent::Arrive {
            at: k as f64,
            request: rankmap_fleet::RequestId::new(k as u64),
            model: m,
        })
        .collect();
    events.push(rankmap_fleet::FleetEvent::ShardDown { at: 50.0, shard: 0 });
    let outcome = FleetRuntime::homogeneous(
        &platform,
        &oracle,
        2,
        FleetConfig {
            manager: quick_manager(),
            // The survivor has room and no floor: every victim of the
            // outage can be absorbed, so evacuation must happen.
            max_per_shard: 8,
            admission_floor: 0.0,
            ..Default::default()
        },
    )
    .execute(&events, 200.0);
    let m = &outcome.metrics;
    assert_eq!(m.failures_injected, 1);
    assert!(m.tier_triaged.iter().sum::<u64>() > 0, "the outage hit live instances: {m:?}");
    assert!(m.accounting_balances(), "{m:?}");
    assert!(m.evacuated > 0, "with survivor headroom the victims must evacuate: {m:?}");
    let avail = m.tier_availability();
    assert!(
        avail[0] >= avail[2],
        "high tier must not fare worse than low: {avail:?} ({m:?})"
    );
    assert!(
        m.evacuation_stall_seconds > 0.0,
        "an evacuation is a real migration and must charge a stall"
    );
}
