//! `LoadStream` ≡ `generate`: the pull-based generator must yield the
//! **byte-identical** event sequence the eager generator materializes —
//! across seeds, every arrival process, churn, faults, and the overlay
//! layers (Zipf popularity, flash crowds, tenant bursts) — while holding
//! only O(live) buffered state regardless of horizon length.
//!
//! `generate` keeps its original eager body (it still calls the eager
//! `sample_times`), so this suite genuinely pins the lazy time walk,
//! the positioned-RNG replay, and the heap merge against the reference
//! implementation rather than against themselves.

use proptest::prelude::*;
use rankmap_fleet::{
    generate, ArrivalProcess, FaultSpec, FlashSpec, FleetEvent, LoadSpec, LoadStream,
    Popularity, TenantSpec,
};

fn process(idx: usize) -> ArrivalProcess {
    match idx {
        0 => ArrivalProcess::Poisson { rate: 1.0 / 12.0 },
        1 => ArrivalProcess::OnOff {
            burst_rate: 0.4,
            idle_rate: 0.02,
            mean_burst: 25.0,
            mean_idle: 70.0,
        },
        _ => ArrivalProcess::Diurnal { mean_rate: 1.0 / 10.0, amplitude: 0.9, period: 150.0 },
    }
}

/// Byte-level identity: `PartialEq` plus explicit bit comparison of the
/// float payloads (`==` would let `-0.0` slip past).
fn assert_bit_identical(streamed: &[FleetEvent], eager: &[FleetEvent], label: &str) {
    assert_eq!(streamed.len(), eager.len(), "{label}: length diverged");
    for (k, (s, e)) in streamed.iter().zip(eager).enumerate() {
        assert_eq!(s, e, "{label}: event {k} diverged");
        assert_eq!(s.at().to_bits(), e.at().to_bits(), "{label}: event {k} time bits diverged");
        if let (
            FleetEvent::ShardThrottle { factor: a, .. },
            FleetEvent::ShardThrottle { factor: b, .. },
        ) = (s, e)
        {
            assert_eq!(a.to_bits(), b.to_bits(), "{label}: event {k} factor bits diverged");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every pre-existing spec shape — the acceptance criterion: specs
    /// written before the streaming rework must stream byte-identically.
    #[test]
    fn stream_matches_generate_for_existing_specs(
        seed in 0u64..256,
        process_idx in 0usize..3,
        churn in any::<bool>(),
        faults in any::<bool>(),
        immortal in any::<bool>(),
    ) {
        let spec = LoadSpec {
            horizon: 400.0,
            process: process(process_idx),
            mean_lifetime: if immortal { 0.0 } else { 60.0 },
            priority_churn_rate: if churn { 1.0 / 40.0 } else { 0.0 },
            seed,
            faults: faults.then(|| FaultSpec {
                shards: 4,
                mtbf: 300.0,
                mttr: 60.0,
                correlation: 0.3,
                throttle_rate: 1.0 / 200.0,
                ..Default::default()
            }),
            ..Default::default()
        };
        let streamed: Vec<FleetEvent> = LoadStream::new(&spec).collect();
        let eager = generate(&spec);
        assert_bit_identical(&streamed, &eager, &format!("seed {seed} process {process_idx}"));
    }

    /// The overlay layers: Zipf popularity, flash crowds, and correlated
    /// tenant bursts — eager episode expansion and the stream's lazy
    /// heap merge must agree event for event.
    #[test]
    fn stream_matches_generate_with_overlay_layers(
        seed in 0u64..128,
        process_idx in 0usize..3,
        zipf in any::<bool>(),
        flash in any::<bool>(),
        tenants in any::<bool>(),
    ) {
        let spec = LoadSpec {
            horizon: 400.0,
            process: process(process_idx),
            mean_lifetime: 45.0,
            priority_churn_rate: 1.0 / 60.0,
            seed,
            popularity: if zipf {
                Popularity::Zipf { exponent: 1.1 }
            } else {
                Popularity::Uniform
            },
            flash: flash.then(|| FlashSpec {
                rate: 1.0 / 120.0,
                mean_duration: 30.0,
                boost_rate: 0.8,
                mean_lifetime: 20.0,
                seed: seed.wrapping_add(17),
            }),
            tenants: tenants.then(|| TenantSpec {
                tenants: 3,
                mean_idle: 90.0,
                mean_burst: 25.0,
                rate: 0.4,
                correlation: 0.5,
                skew: 0.7,
                mean_lifetime: 30.0,
                seed: seed.wrapping_add(41),
            }),
            ..Default::default()
        };
        let streamed: Vec<FleetEvent> = LoadStream::new(&spec).collect();
        let eager = generate(&spec);
        assert_bit_identical(
            &streamed,
            &eager,
            &format!("seed {seed} zipf={zipf} flash={flash} tenants={tenants}"),
        );
    }
}

/// Enabling an overlay layer never perturbs the base arrival stream —
/// the same guarantee the fault layer makes, extended to demand shaping.
#[test]
fn overlays_never_perturb_the_base_stream() {
    let plain = LoadSpec { horizon: 500.0, seed: 9, ..Default::default() };
    let layered = LoadSpec {
        flash: Some(FlashSpec::default()),
        tenants: Some(TenantSpec::default()),
        ..plain.clone()
    };
    let plain_times: Vec<u64> = generate(&plain)
        .iter()
        .filter_map(|e| match e {
            FleetEvent::Arrive { at, .. } => Some(at.to_bits()),
            _ => None,
        })
        .collect();
    let layered_times: Vec<u64> = generate(&layered)
        .iter()
        .filter_map(|e| match e {
            FleetEvent::Arrive { at, .. } => Some(at.to_bits()),
            _ => None,
        })
        .collect();
    // Every base arrival time survives, in order, within the layered
    // stream (the overlay only adds arrivals).
    let mut cursor = layered_times.iter();
    for t in &plain_times {
        assert!(
            cursor.any(|lt| lt == t),
            "base arrival missing from layered stream"
        );
    }
    assert!(layered_times.len() > plain_times.len(), "overlays added arrivals");
}

/// The bounded-buffer property: peak buffered state is O(live
/// instances), independent of horizon length. Quadrupling the horizon
/// multiplies total arrivals ~4× but must leave the stream's high-water
/// mark essentially flat — and orders of magnitude below the event
/// count `generate` would have materialized.
#[test]
fn peak_buffered_state_is_independent_of_horizon() {
    let spec = |horizon: f64| LoadSpec {
        horizon,
        process: ArrivalProcess::Poisson { rate: 0.5 },
        mean_lifetime: 20.0,
        priority_churn_rate: 1.0 / 50.0,
        seed: 3,
        ..Default::default()
    };
    let peak_of = |spec: &LoadSpec| {
        let mut stream = LoadStream::new(spec);
        let mut events = 0usize;
        while stream.next().is_some() {
            events += 1;
        }
        (stream.peak_buffered(), events)
    };
    let (peak_short, events_short) = peak_of(&spec(2_000.0));
    let (peak_long, events_long) = peak_of(&spec(8_000.0));
    assert!(events_long > 3 * events_short, "long horizon offers ~4x the events");
    // The high-water mark tracks live instances (rate x lifetime = 10
    // expected), not the horizon: allow exponential-tail slack but no
    // growth proportional to the 4x event count.
    assert!(
        peak_long <= 2 * peak_short.max(20),
        "peak buffered state grew with horizon: {peak_short} -> {peak_long}"
    );
    assert!(
        peak_long * 10 < events_long,
        "peak buffered state ({peak_long}) is not o(total events {events_long})"
    );
}
