//! Normalized-potential routing invariants on mixed fleets.
//!
//! The heterogeneous router compares *fractions of each board's own
//! ideal*, so board speed must cancel out of the scores: a shard that is
//! uniformly twice as fast serves every mapping twice as fast **and**
//! doubles its ideal rates, leaving its normalized potential — and
//! therefore its relative ranking against other boards — unchanged.
//! `Platform::scaled` constructs exactly such a clone, which makes the
//! invariance testable. The suite also pins the plan-cache half of the
//! story: plans recorded on one board type never hit (or even load) on
//! another.

use rankmap_core::manager::{ManagerConfig, RankMapManager};
use rankmap_core::oracle::AnalyticalOracle;
use rankmap_core::priority::PriorityMode;
use rankmap_fleet::{FleetConfig, FleetRuntime, FleetSpec, ShardSpec};
use rankmap_models::ModelId;
use rankmap_platform::Platform;
use rankmap_sim::Workload;

fn quick_config() -> FleetConfig {
    FleetConfig {
        manager: ManagerConfig { mcts_iterations: 60, warm_iterations: 30, ..Default::default() },
        ..Default::default()
    }
}

/// Models spanning light to heavy — the probe set every invariance check
/// sweeps.
fn probe_models() -> [ModelId; 5] {
    [
        ModelId::AlexNet,
        ModelId::MobileNet,
        ModelId::ResNet50,
        ModelId::InceptionV4,
        ModelId::Vgg16,
    ]
}

#[test]
fn scaled_board_keeps_its_normalized_scores() {
    // An idle board and its 2x-speed clone must report (nearly) the same
    // normalized (delta, arrival potential) for every probe model: the
    // only residue is the ideal-rate measurement's event-count
    // quantization, so the tolerance is loose-ish but far below any
    // routing-relevant difference.
    let orange = Platform::orange_pi_5();
    let fast = orange.scaled(2.0);
    let orange_oracle = AnalyticalOracle::new(&orange);
    let fast_oracle = AnalyticalOracle::new(&fast);
    let spec = FleetSpec::new(vec![
        ShardSpec::new(&orange, &orange_oracle, 1),
        ShardSpec::new(&fast, &fast_oracle, 1),
    ]);
    let mut fleet = FleetRuntime::new(&spec, quick_config());
    for model in probe_models() {
        let scores = fleet.probe_scores(model);
        let (d0, p0) = scores[0].expect("idle shard scores");
        let (d1, p1) = scores[1].expect("idle shard scores");
        assert!(
            (d0 - d1).abs() < 0.02 * d0.abs().max(1e-9),
            "{model:?}: normalized delta must be speed-invariant: {d0} vs {d1}"
        );
        assert!(
            (p0 - p1).abs() < 0.02 * p0.abs().max(1e-9),
            "{model:?}: normalized arrival potential must be speed-invariant: {p0} vs {p1}"
        );
    }
}

#[test]
fn doubling_a_board_speed_does_not_change_its_ranking() {
    // Mixed fleet {orange, jetson}: whichever shard the router prefers
    // for a model, it must still prefer after the orange board is cloned
    // at 2x speed — normalization removes raw speed from the decision.
    let orange = Platform::orange_pi_5();
    let fast_orange = orange.scaled(2.0);
    let jetson = Platform::jetson_orin_nx();
    let orange_oracle = AnalyticalOracle::new(&orange);
    let fast_oracle = AnalyticalOracle::new(&fast_orange);
    let jetson_oracle = AnalyticalOracle::new(&jetson);

    let mut baseline = FleetRuntime::new(
        &FleetSpec::new(vec![
            ShardSpec::new(&orange, &orange_oracle, 1),
            ShardSpec::new(&jetson, &jetson_oracle, 1),
        ]),
        quick_config(),
    );
    let mut scaled = FleetRuntime::new(
        &FleetSpec::new(vec![
            ShardSpec::new(&fast_orange, &fast_oracle, 1),
            ShardSpec::new(&jetson, &jetson_oracle, 1),
        ]),
        quick_config(),
    );
    for model in probe_models() {
        let deltas = |fleet: &mut FleetRuntime<AnalyticalOracle>| -> (f64, f64) {
            let scores = fleet.probe_scores(model);
            (
                scores[0].expect("idle shard scores").0,
                scores[1].expect("idle shard scores").0,
            )
        };
        let (b_orange, b_jetson) = deltas(&mut baseline);
        let (s_orange, s_jetson) = deltas(&mut scaled);
        // The ideal-rate measurement quantizes at the event-count level
        // (~1%); a gap inside that band is a genuine tie whose order is
        // not meaningful. Decisive gaps must keep their winner.
        let tol = 0.02 * b_orange.abs().max(b_jetson.abs());
        if (b_orange - b_jetson).abs() > tol {
            assert_eq!(
                b_orange > b_jetson,
                s_orange > s_jetson,
                "{model:?}: a 2x speed clone must not re-rank the shards: \
                 baseline ({b_orange}, {b_jetson}), scaled ({s_orange}, {s_jetson})"
            );
        } else {
            // Near-tie: the clone must stay a near-tie, not a landslide.
            assert!(
                (s_orange - s_jetson).abs() < 2.0 * tol,
                "{model:?}: a tie must not become decisive under scaling: \
                 ({s_orange}, {s_jetson})"
            );
        }
    }
}

#[test]
fn raw_throughput_would_have_flipped_the_comparison() {
    // Sanity check that the invariance above is the normalization's doing
    // and not a vacuous truth: the *raw* predicted throughput of the 2x
    // clone really is ~2x the original, so un-normalized scoring would
    // always prefer the faster clone.
    let orange = Platform::orange_pi_5();
    let fast = orange.scaled(2.0);
    let orange_oracle = AnalyticalOracle::new(&orange);
    let fast_oracle = AnalyticalOracle::new(&fast);
    use rankmap_core::oracle::ThroughputOracle;
    use rankmap_platform::ComponentId;
    use rankmap_sim::Mapping;
    for model in probe_models() {
        let w = Workload::from_ids([model]);
        let m = Mapping::uniform(&w, ComponentId::new(0));
        let slow = orange_oracle.predict(&w, &m)[0];
        let quick = fast_oracle.predict(&w, &m)[0];
        assert!(
            (quick / slow - 2.0).abs() < 0.05,
            "{model:?}: the 2x clone must run ~2x the raw throughput: {slow} -> {quick}"
        );
    }
}

#[test]
fn plan_cache_entries_never_hit_across_platforms() {
    // A snapshot of plans mapped on the Orange Pi must not serve — or
    // even import onto — a Jetson-class manager: the placements index
    // different components and the predictions were priced on a
    // different board.
    let orange = Platform::orange_pi_5();
    let jetson = Platform::jetson_orin_nx();
    let orange_oracle = AnalyticalOracle::new(&orange);
    let jetson_oracle = AnalyticalOracle::new(&jetson);
    let cfg = ManagerConfig { mcts_iterations: 60, warm_iterations: 30, ..Default::default() };
    let orange_mgr = RankMapManager::new(&orange, &orange_oracle, cfg);
    let w = Workload::from_ids([ModelId::AlexNet, ModelId::MobileNet]);
    let _ = orange_mgr.map_cached(&w, &PriorityMode::Dynamic);
    let snapshot = orange_mgr.export_plan_cache();

    let jetson_mgr = RankMapManager::new(&jetson, &jetson_oracle, cfg);
    let err = jetson_mgr.import_plan_cache(&snapshot).unwrap_err();
    assert!(
        err.to_string().contains("never cross board types"),
        "cross-board import must fail with a clear error: {err}"
    );
    // The Jetson manager's own cache stayed empty: mapping the same
    // workload set is a miss, not a stale cross-platform hit.
    let plan = jetson_mgr.map_cached(&w, &PriorityMode::Dynamic);
    assert!(plan.evaluations > 0, "the Jetson must search, not serve an Orange Pi plan");
    assert_eq!(jetson_mgr.plan_cache_stats().hits, 0, "no cross-platform hits");
    // Even a speed-binned clone of the same board is a different
    // platform identity: same component count, same names, different
    // capability numbers.
    let fast = orange.scaled(2.0);
    let fast_oracle = AnalyticalOracle::new(&fast);
    let fast_mgr = RankMapManager::new(&fast, &fast_oracle, cfg);
    assert!(
        fast_mgr.import_plan_cache(&snapshot).is_err(),
        "a same-shape, different-speed board must also refuse the snapshot"
    );
}
