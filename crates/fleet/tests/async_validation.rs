//! Adversarial unit tests for the epoch log's apply-time validation:
//! hand-built event streams that race a speculative probe against a
//! mutation of the very shard state it was scored on — a competing
//! admission, a departure, a thermal derate, an outage — and check that
//! validation catches every one (the fallback re-probe fires, the
//! staleness counters account for it) while the final placements stay
//! bit-identical to the sequential oracle.
//!
//! The streams run under `Async { workers: 1, max_epoch_lag }` with
//! full-scan placement so every shard gets a speculative entry and the
//! window boundaries are exact: a lag bound of `L` makes the executor
//! pull `L + 1` events, speculate their arrivals against the current
//! snapshots, and only then apply — so any mutation *inside* the window
//! lands between speculation and apply by construction.

mod common;

use common::{assert_identical, quick_manager};
use rankmap_core::oracle::AnalyticalOracle;
use rankmap_core::priority::PriorityMode;
use rankmap_fleet::{
    FleetConfig, FleetEvent, FleetOutcome, FleetRuntime, Parallelism, PlacementOutcome,
    RequestId, TelemetrySpec,
};
use rankmap_models::ModelId;
use rankmap_platform::Platform;

const SHARDS: usize = 3;
const HORIZON: f64 = 100.0;

fn config(parallelism: Parallelism, indexed: bool) -> FleetConfig {
    FleetConfig {
        manager: quick_manager(),
        max_per_shard: 4,
        // No admission floor: every probe that finds capacity admits, so
        // a placement difference could only come from a stale score.
        admission_floor: 0.0,
        indexed_placement: indexed,
        telemetry: TelemetrySpec::on(),
        parallelism,
        ..Default::default()
    }
}

fn run(events: &[FleetEvent], parallelism: Parallelism, indexed: bool) -> FleetOutcome {
    let platform = Platform::orange_pi_5();
    let oracle = AnalyticalOracle::new(&platform);
    FleetRuntime::homogeneous(&platform, &oracle, SHARDS, config(parallelism, indexed))
        .execute(events, HORIZON)
}

/// Runs `events` under the epoch log and under the sequential oracle,
/// asserts bit-identity, and returns the epoch-log outcome (whose
/// telemetry carries the staleness counters).
fn oracle_checked(events: &[FleetEvent], parallelism: Parallelism, label: &str) -> FleetOutcome {
    let candidate = run(events, parallelism, false);
    let reference = run(events, Parallelism::Sequential, false);
    assert_identical(&reference, &candidate, label);
    candidate
}

/// (reused, revalidations, refreshes) from the run's registry.
fn staleness_counters(outcome: &FleetOutcome) -> (u64, u64, u64) {
    let snap = outcome.telemetry.as_ref().expect("telemetry enabled");
    (
        snap.registry.counter("fleet_spec_probes_reused_total"),
        snap.registry.counter("fleet_staleness_revalidations_total"),
        snap.registry.counter("fleet_staleness_refreshes_total"),
    )
}

fn arrive(at: f64, id: u64, model: ModelId) -> FleetEvent {
    FleetEvent::Arrive { at, request: RequestId::new(id), model }
}

/// The shard an admitted request landed on.
fn placed_shard(outcome: &FleetOutcome, id: u64) -> usize {
    outcome
        .placements
        .iter()
        .find_map(|r| match r.outcome {
            PlacementOutcome::Admitted { shard } if r.request == RequestId::new(id) => {
                Some(shard)
            }
            _ => None,
        })
        .expect("request admitted")
}

/// A rebalance migration racing a pending apply lane: the lane batch
/// holds departures on two shards; committing the first frees the only
/// viable destination, so the deferred rebalance check migrates an
/// instance *off the second op's shard* — bumping its epoch between
/// prepare and commit. The stale preparation must be discarded and the
/// departure re-applied directly, **including the speculative remap's
/// plan-cache footprint**: a leaked cache entry (or LRU touch, or
/// counter bump) from the discarded prepare would steer a later remap
/// and silently fork the run from the sequential oracle.
#[test]
fn rebalance_mid_batch_discards_the_stale_lane_preparation() {
    let platform = Platform::orange_pi_5();
    let oracle = AnalyticalOracle::new(&platform);
    // Five arrivals onto 3 shards (max_per_shard = 2) leave one shard
    // with a single instance — the future migration destination must end
    // *empty*, because a loaded destination loses more than a derated
    // source heals and the destination filter would veto the move.
    let mut events = vec![
        arrive(0.0, 0, ModelId::AlexNet),
        arrive(1.0, 1, ModelId::AlexNet),
        arrive(2.0, 2, ModelId::AlexNet),
        arrive(3.0, 3, ModelId::AlexNet),
        arrive(4.0, 4, ModelId::AlexNet),
    ];
    let config = |parallelism| FleetConfig {
        manager: quick_manager(),
        max_per_shard: 2,
        admission_floor: 0.0,
        // Between the 2-live shards' healthy mean (~0.57) and the
        // derated one's (~0.11): only the throttled shard ever reads as
        // collapsed.
        rebalance_threshold: 0.3,
        // Shedding without a remap only partially heals a derated shard
        // here; a negative margin forces the shed through anyway — the
        // destination filter still vetoes loaded destinations, so the
        // migration waits for the emptied shard.
        rebalance_margin: -1.0,
        telemetry: TelemetrySpec::on(),
        parallelism,
        ..Default::default()
    };
    let run = |events: &[FleetEvent], parallelism| {
        FleetRuntime::homogeneous(&platform, &oracle, SHARDS, config(parallelism))
            .execute(events, HORIZON)
    };
    // Discovery pass (arrivals only): learn which shard got one instance
    // (`solo`, the eventual destination) and pick a two-instance shard to
    // derate (`duo`, the eventual source). Later events can't reorder
    // these placements, so the discovered ids stay valid.
    let probe = run(&events, Parallelism::Sequential);
    let on_shard = |shard: usize, outcome: &FleetOutcome| -> Vec<u64> {
        outcome
            .placements
            .iter()
            .filter_map(|r| match r.outcome {
                PlacementOutcome::Admitted { shard: s } if s == shard => Some(r.request.ordinal()),
                _ => None,
            })
            .collect()
    };
    let residents: Vec<Vec<u64>> = (0..SHARDS).map(|s| on_shard(s, &probe)).collect();
    let solo = residents.iter().position(|r| r.len() == 1).expect("one shard holds 1 instance");
    let duo = residents.iter().position(|r| r.len() == 2).expect("one shard holds 2 instances");
    // Collapse `duo`, fence the derate in with a priority broadcast
    // (Dynamic ranks over identical models stay uniform, so nothing else
    // changes), then the racing pair: empty `solo` — the deferred
    // rebalance check after that commit migrates `duo`'s first instance
    // into it, bumping `duo`'s epoch — while the next lane op is a
    // departure of `duo`'s *second* instance, prepared against the
    // pre-migration epoch.
    events.push(FleetEvent::ShardThrottle { at: 10.0, shard: duo, factor: 0.2 });
    events.push(FleetEvent::SetPriorities { at: 12.0, mode: PriorityMode::Dynamic });
    events.push(FleetEvent::Depart { at: 20.0, request: RequestId::new(residents[solo][0]) });
    events.push(FleetEvent::Depart { at: 21.0, request: RequestId::new(residents[duo][1]) });

    let reference = run(&events, Parallelism::Sequential);
    assert!(reference.metrics.migrations >= 1, "the race needs a migration: {:?}", reference.metrics);
    for (workers, max_epoch_lag) in [(1usize, 16u64), (2, 16), (4, 32)] {
        let lanes =
            run(&events, Parallelism::Async { workers, max_epoch_lag, apply_lanes: true });
        assert_identical(
            &reference,
            &lanes,
            &format!("rebalance vs lane Async{{{workers},{max_epoch_lag},lanes:on}}"),
        );
        let snap = lanes.telemetry.as_ref().expect("telemetry enabled");
        assert!(
            snap.registry.counter("fleet_lane_discards_total") >= 1,
            "the stale preparation must be discarded, not committed"
        );
    }
}

/// A competing admission inside the window: B's probe of A's shard was
/// scored before A landed there, so at apply time the epoch moved and
/// the class key (live set) no longer matches — the fallback re-probe
/// must fire, and the placement must equal the oracle's.
#[test]
fn competing_arrival_staleness_falls_back_to_a_fresh_probe() {
    let events = [arrive(0.0, 0, ModelId::ResNet50), arrive(1.0, 1, ModelId::MobileNet)];
    let outcome = oracle_checked(
        &events,
        Parallelism::Async { workers: 1, max_epoch_lag: 1, apply_lanes: false },
        "competing arrival",
    );
    assert_eq!(outcome.metrics.admitted, 2, "{:?}", outcome.metrics);
    let (reused, revalidations, refreshes) = staleness_counters(&outcome);
    assert!(refreshes >= 1, "A's shard mutated under B's probe: the fallback must fire");
    assert!(reused >= 1, "untouched shards stay at lag 0 and reuse");
    assert!(
        revalidations <= reused + refreshes,
        "revalidations count a subset of consulted probes"
    );
}

/// A departure inside the window: B was speculated while A was live, the
/// departure empties the shard before B applies. The epoch moved and
/// the key differs (the live set changed), so the entry is refreshed.
#[test]
fn departure_staleness_invalidates_the_speculated_probe() {
    let events = [
        arrive(0.0, 0, ModelId::ResNet50),
        // Unknown-request departure: an ignored no-op that pads the
        // first window so A and its own departure never share one.
        FleetEvent::Depart { at: 1.0, request: RequestId::new(99) },
        FleetEvent::Depart { at: 10.0, request: RequestId::new(0) },
        arrive(20.0, 1, ModelId::MobileNet),
    ];
    let outcome = oracle_checked(
        &events,
        Parallelism::Async { workers: 1, max_epoch_lag: 1, apply_lanes: true },
        "departure between speculation and apply",
    );
    assert_eq!(outcome.metrics.admitted, 2);
    assert_eq!(outcome.metrics.departed, 1);
    let (_, _, refreshes) = staleness_counters(&outcome);
    assert!(refreshes >= 1, "the departed shard's entry must not be trusted");
}

/// A thermal derate inside the window: the throttle factor is part of
/// the placement class key, so a probe scored at nominal speed must be
/// rebuilt once the shard runs derated.
#[test]
fn derate_staleness_forces_a_fresh_probe() {
    let events = [
        FleetEvent::ShardThrottle { at: 5.0, shard: 0, factor: 0.5 },
        arrive(10.0, 0, ModelId::InceptionV4),
    ];
    let outcome = oracle_checked(
        &events,
        Parallelism::Async { workers: 1, max_epoch_lag: 1, apply_lanes: true },
        "derate between speculation and apply",
    );
    assert_eq!(outcome.metrics.admitted, 1);
    assert_eq!(outcome.metrics.throttle_events, 1);
    let (reused, _, refreshes) = staleness_counters(&outcome);
    assert!(refreshes >= 1, "a derated shard's nominal-speed probe must be rebuilt");
    assert!(reused >= 1, "the unthrottled shards stay at lag 0 and reuse");
}

/// An outage inside the window: the shard B's probe was scored on goes
/// down before B applies. A down shard's class key is `None`, so the
/// entry can never validate — the fresh re-probe returns `None` and the
/// arrival is steered to a survivor, exactly as the oracle places it.
#[test]
fn shard_down_staleness_steers_the_arrival_to_a_survivor() {
    let events =
        [FleetEvent::ShardDown { at: 5.0, shard: 0 }, arrive(10.0, 0, ModelId::ResNet50)];
    let outcome = oracle_checked(
        &events,
        Parallelism::Async { workers: 1, max_epoch_lag: 1, apply_lanes: false },
        "outage between speculation and apply",
    );
    assert_eq!(outcome.metrics.admitted, 1);
    assert_ne!(placed_shard(&outcome, 0), 0, "the arrival must avoid the down shard");
    let (_, _, refreshes) = staleness_counters(&outcome);
    assert!(refreshes >= 1, "a down shard's speculative probe must never be reused");
}

/// Staleness beyond the bound: an outage with a live victim bumps the
/// failed shard's epoch more than once (evacuation apply + the down
/// mark), pushing its lag past `max_epoch_lag: 1` — the entry expires
/// on the lag test alone, before any key comparison.
#[test]
fn staleness_beyond_the_bound_is_recomputed_fresh() {
    // Find where the oracle puts A, then fail exactly that shard inside
    // B's window.
    let probe_events = [arrive(0.0, 0, ModelId::ResNet50)];
    let shard_a = placed_shard(&run(&probe_events, Parallelism::Sequential, false), 0);
    let events = [
        arrive(0.0, 0, ModelId::ResNet50),
        // Pad the first window (ignored unknown departure) so the
        // outage and B share the second.
        FleetEvent::Depart { at: 1.0, request: RequestId::new(99) },
        FleetEvent::ShardDown { at: 10.0, shard: shard_a },
        arrive(20.0, 1, ModelId::MobileNet),
    ];
    let outcome = oracle_checked(
        &events,
        Parallelism::Async { workers: 1, max_epoch_lag: 1, apply_lanes: true },
        "lag beyond the bound",
    );
    assert_eq!(outcome.metrics.admitted, 2);
    assert_eq!(outcome.metrics.evacuated + outcome.metrics.shed, 1, "{:?}", outcome.metrics);
    assert_ne!(placed_shard(&outcome, 1), shard_a);
    let (_, _, refreshes) = staleness_counters(&outcome);
    assert!(
        refreshes >= 2,
        "both the failed shard and the evacuation's destination mutated under B's probe"
    );
}

/// The positive case: epoch churn that lands back in the *same* state.
/// A down/up pulse on an idle shard moves its epoch by two but restores
/// the exact class key, so revalidation succeeds — the speculated probe
/// is reused and the fallback never fires.
#[test]
fn churn_back_to_the_same_state_revalidates_without_a_refresh() {
    let events = [
        FleetEvent::ShardDown { at: 1.0, shard: 2 },
        FleetEvent::ShardUp { at: 2.0, shard: 2 },
        arrive(3.0, 0, ModelId::ResNet50),
    ];
    let outcome = oracle_checked(
        &events,
        Parallelism::Async { workers: 1, max_epoch_lag: 4, apply_lanes: false },
        "down/up churn on an idle shard",
    );
    assert_eq!(outcome.metrics.admitted, 1);
    let (reused, revalidations, refreshes) = staleness_counters(&outcome);
    assert_eq!(refreshes, 0, "an unchanged class key must validate, not rebuild");
    assert!(revalidations >= 1, "the churned shard's reuse goes through revalidation");
    assert!(reused >= 1);
}

/// Indexed placement composes with validation: representatives change as
/// classes split and merge between speculation and apply, and a missing
/// or expired entry falls back to a fresh build — bit-identical to the
/// sequential indexed oracle either way.
#[test]
fn indexed_speculation_matches_the_indexed_oracle() {
    let events = [
        arrive(0.0, 0, ModelId::ResNet50),
        arrive(1.0, 1, ModelId::MobileNet),
        FleetEvent::ShardThrottle { at: 5.0, shard: 1, factor: 0.6 },
        arrive(10.0, 2, ModelId::AlexNet),
        FleetEvent::Depart { at: 30.0, request: RequestId::new(0) },
        arrive(40.0, 3, ModelId::Vgg16),
    ];
    let parallelism = Parallelism::Async { workers: 2, max_epoch_lag: 2, apply_lanes: true };
    let candidate = run(&events, parallelism, true);
    let reference = run(&events, Parallelism::Sequential, true);
    assert_identical(&reference, &candidate, "indexed speculation");
    assert_eq!(candidate.metrics.admitted, 4, "{:?}", candidate.metrics);
}

/// The retry-before-event tie rule races the lookahead window: a backoff
/// retry lands at exactly the timestamp of a stream event *inside the
/// speculated window*. The ordered walk takes the retry first (it was
/// offered strictly earlier), its fresh probe fan fences the apply
/// lanes, and only then does the equal-time event apply — any deviation
/// (event first, or a stale probe surviving the retry's re-probe) would
/// shift admissions and break the bit-compare against the sequential
/// oracle.
#[test]
fn retry_at_an_equal_timestamp_orders_before_the_event() {
    // One single-slot shard: A occupies it, B rejects and schedules a
    // retry at exactly t=10 — the same instant A departs and C arrives.
    // Sequential semantics: the retry fires first (B's slot request
    // predates both), still finds the shard full (A departs only at the
    // event *after* the retry), and finalizes as rejected; A's departure
    // then frees the slot; C admits. The epoch log must reproduce that
    // exact interleaving at every worker count and lag, lanes on or off.
    let platform = Platform::orange_pi_5();
    let oracle = AnalyticalOracle::new(&platform);
    let events = [
        arrive(0.0, 0, ModelId::ResNet50),
        arrive(1.0, 1, ModelId::MobileNet),
        FleetEvent::Depart { at: 10.0, request: RequestId::new(0) },
        arrive(11.0, 2, ModelId::AlexNet),
    ];
    let config = |parallelism| FleetConfig {
        manager: quick_manager(),
        max_per_shard: 1,
        admission_floor: 0.0,
        retry_limit: 1,
        retry_backoff: 9.0,
        telemetry: TelemetrySpec::on(),
        parallelism,
        ..Default::default()
    };
    let run = |parallelism| {
        FleetRuntime::homogeneous(&platform, &oracle, 1, config(parallelism))
            .execute(&events, HORIZON)
    };
    let reference = run(Parallelism::Sequential);
    assert_eq!(reference.metrics.retries, 1, "{:?}", reference.metrics);
    assert_eq!(
        reference.metrics.admitted, 2,
        "B's equal-time retry must fire before A's departure frees the slot: {:?}",
        reference.metrics
    );
    assert_eq!(reference.metrics.rejected, 1, "{:?}", reference.metrics);
    for apply_lanes in [false, true] {
        for (workers, max_epoch_lag) in [(1usize, 1u64), (2, 4), (4, 16)] {
            let candidate =
                run(Parallelism::Async { workers, max_epoch_lag, apply_lanes });
            assert_identical(
                &reference,
                &candidate,
                &format!("retry tie Async{{{workers},{max_epoch_lag},lanes:{apply_lanes}}}"),
            );
        }
    }
}
