//! Edge data-center scenario (the paper's motivating setting): users in
//! different SLA tiers submit DNN queries; the premium user's model must
//! hold its throughput while everyone makes progress.
//!
//! ```bash
//! cargo run --release --example edge_datacenter
//! ```

use rankmap::prelude::*;

fn main() {
    let platform = Platform::orange_pi_5();
    // Four tenants: the premium tenant runs Inception-V4 (heavy!), three
    // best-effort tenants run lighter vision models.
    let workload = Workload::from_ids([
        ModelId::InceptionV4, // premium SLA
        ModelId::MobileNetV2,
        ModelId::SqueezeNetV2,
        ModelId::GoogleNet,
    ]);
    let names: Vec<&str> = workload.models().iter().map(|m| m.name()).collect();

    let oracle = AnalyticalOracle::new(&platform);
    let manager = RankMapManager::new(&platform, &oracle, ManagerConfig::default());
    let board = EventEngine::new(&platform);
    let ideals: Vec<f64> = workload
        .models()
        .iter()
        .map(|m| board.ideal_rate(m.id(), ComponentId::new(0)))
        .collect();

    // SLA tiers as static ranks: premium gets 0.7.
    let plan = manager.map(&workload, &PriorityMode::critical(4, 0));
    let report = board.evaluate(&workload, &plan.mapping);
    let pots = report.potentials(&ideals);
    println!("RankMap-S with premium tenant = {}", names[0]);
    for (i, name) in names.iter().enumerate() {
        let starved = if pots[i] < STARVATION_POTENTIAL { "  <-- STARVED" } else { "" };
        println!(
            "  {name:<16} {:6.2} inf/s  (P = {:.3}){starved}",
            report.per_dnn[i], pots[i]
        );
    }

    // Contrast: GPU-only default.
    let base = board.evaluate(&workload, &Mapping::uniform(&workload, ComponentId::new(0)));
    let base_pots = base.potentials(&ideals);
    println!("\nAll-on-GPU default:");
    for (i, name) in names.iter().enumerate() {
        let starved =
            if base_pots[i] < STARVATION_POTENTIAL { "  <-- STARVED" } else { "" };
        println!(
            "  {name:<16} {:6.2} inf/s  (P = {:.3}){starved}",
            base.per_dnn[i], base_pots[i]
        );
    }
    println!(
        "\npremium tenant potential: RankMap {:.3} vs default {:.3} (x{:.1})",
        pots[0],
        base_pots[0],
        pots[0] / base_pots[0].max(1e-4)
    );
}
