//! A heterogeneous fleet end to end: Orange Pi 5 and Jetson-class boards
//! serve one load behind the normalized-potential router, the run is
//! recorded to a version-2 trace (platform mix in the header), and the
//! trace replays bit-for-bit on a freshly built mixed fleet.
//!
//! ```bash
//! cargo run --release --example hetero_fleet
//! ```

use rankmap::core::manager::ManagerConfig;
use rankmap::core::oracle::AnalyticalOracle;
use rankmap::fleet::{
    generate, ArrivalProcess, FleetConfig, FleetRuntime, FleetSpec, LoadSpec, ShardSpec, Trace,
    TraceMeta,
};
use rankmap::prelude::*;

fn main() {
    let orange = Platform::orange_pi_5();
    let jetson = Platform::jetson_orin_nx();
    println!("fleet mix:\n{orange}\n{jetson}");
    let orange_oracle = AnalyticalOracle::new(&orange);
    let jetson_oracle = AnalyticalOracle::new(&jetson);
    let spec = || {
        FleetSpec::new(vec![
            ShardSpec::new(&orange, &orange_oracle, 2),
            ShardSpec::new(&jetson, &jetson_oracle, 2),
        ])
    };

    let load = LoadSpec {
        horizon: 600.0,
        process: ArrivalProcess::Poisson { rate: 1.0 / 15.0 },
        mean_lifetime: 180.0,
        seed: 9,
        ..Default::default()
    };
    let events = generate(&load);
    println!(
        "\noffered load: {} events over {:.0}s (~{:.1} arrivals/min mean)",
        events.len(),
        load.horizon,
        load.process.mean_rate() * 60.0
    );

    let config = FleetConfig {
        manager: ManagerConfig {
            mcts_iterations: 200,
            warm_iterations: 80,
            plan_cache_capacity: 256,
            ..Default::default()
        },
        ..Default::default()
    };
    let fleet = FleetRuntime::new(&spec(), config.clone());
    let platforms = fleet.platform_names().to_vec();
    let outcome = fleet.execute(&events, load.horizon);

    let m = &outcome.metrics;
    println!(
        "\n{} shards: admitted {}/{} ({} rejected), {} rebalance migrations",
        m.shards, m.admitted, m.offered, m.rejected, m.migrations
    );
    for (s, ((pot, adm), platform)) in m
        .per_shard_potential
        .iter()
        .zip(&m.per_shard_admitted)
        .zip(&m.per_shard_platform)
        .enumerate()
    {
        println!("  shard-{s} [{platform:>14}]: {adm:>2} admitted, timeline potential {pot:.3}");
    }
    println!(
        "aggregate fleet potential: {:.1} pot·s | placement latency p50 {:?} p99 {:?}",
        m.aggregate_potential_seconds, outcome.placement_latency.p50,
        outcome.placement_latency.p99
    );

    // Record a version-2 trace — the platform mix rides in the header —
    // and replay it on a fresh mixed fleet: bit-identical metrics.
    let trace = Trace::new(
        TraceMeta::new(platforms.len(), load.horizon, load.seed, "hetero-example")
            .with_platforms(platforms),
        events,
    );
    let jsonl = trace.to_jsonl();
    println!("\ntrace: {} JSONL bytes (v2, platform mix pinned); replaying...", jsonl.len());
    let replayed = FleetRuntime::new(&spec(), config)
        .execute_trace(&Trace::from_jsonl(&jsonl).expect("trace parses"));
    assert_eq!(replayed.metrics, outcome.metrics, "replay must be bit-identical");
    println!("replay reproduced the mixed-fleet metrics bit-for-bit.");
}
