//! Trains the full learned pipeline (VQ-VAE + multi-task estimator) on
//! board-simulator data and uses it as the search oracle — the paper's
//! actual configuration. Slower than the analytical oracle but exercises
//! every learned component.
//!
//! ```bash
//! cargo run --release --example train_estimator
//! ```

use rankmap::core::manager::{ManagerConfig, RankMapManager};
use rankmap::core::train::{train_pipeline, Fidelity};
use rankmap::prelude::*;

fn main() {
    let platform = Platform::orange_pi_5();
    eprintln!("training the estimator at Quick fidelity (600 samples)...");
    let artifacts = train_pipeline(&platform, Fidelity::Quick, 1);
    println!("dataset: {} labelled mappings", artifacts.dataset_size);
    println!("VQ-VAE reconstruction MSE: {:.4}", artifacts.vqvae_loss);
    println!(
        "estimator validation L2 by epoch: {:?}",
        artifacts
            .report
            .val_loss
            .iter()
            .map(|v| (v * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );

    // Use the learned oracle inside the manager, as the paper does.
    let manager = RankMapManager::new(
        &platform,
        &artifacts.oracle,
        ManagerConfig { mcts_iterations: 800, ..Default::default() },
    );
    let workload =
        Workload::from_ids([ModelId::AlexNet, ModelId::ResNet50, ModelId::SqueezeNetV2]);
    let plan = manager.map(&workload, &PriorityMode::Dynamic);
    println!("\nlearned-oracle mapping:\n{}", plan.mapping);

    let board = EventEngine::new(&platform);
    let measured = board.evaluate(&workload, &plan.mapping);
    let baseline =
        board.evaluate(&workload, &Mapping::uniform(&workload, ComponentId::new(0)));
    println!("measured : {measured}");
    println!("baseline : {baseline}");
}
