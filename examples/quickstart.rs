//! Quickstart: map a 3-DNN workload with RankMap and compare it to the
//! all-GPU default.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use rankmap::prelude::*;

fn main() {
    // 1. Describe the device (the paper's Orange Pi 5: GPU + big.LITTLE).
    let platform = Platform::orange_pi_5();
    println!("{platform}");

    // 2. Pick the concurrent DNNs.
    let workload =
        Workload::from_ids([ModelId::SqueezeNetV2, ModelId::ResNet50, ModelId::MobileNet]);
    for m in workload.models() {
        println!("  {m}");
    }
    println!(
        "mapping space: 3^{} = {:.1e} candidate mappings",
        workload.total_units(),
        workload.mapping_space(platform.component_count())
    );

    // 3. Search for a priority-aware mapping (dynamic = demand-derived ranks).
    let oracle = AnalyticalOracle::new(&platform);
    let manager = RankMapManager::new(&platform, &oracle, ManagerConfig::default());
    let plan = manager.map(&workload, &PriorityMode::Dynamic);
    println!("\nchosen mapping (one digit per unit = component):\n{}", plan.mapping);
    println!("qualified (no predicted starvation): {}", plan.qualified());

    // 4. Measure on the simulated board, against the GPU-only default.
    let board = EventEngine::new(&platform);
    let found = board.evaluate(&workload, &plan.mapping);
    let baseline =
        board.evaluate(&workload, &Mapping::uniform(&workload, ComponentId::new(0)));
    println!("\nRankMap : {found}");
    println!("Baseline: {baseline}");
    println!(
        "speedup on average throughput: x{:.2}",
        found.average() / baseline.average().max(1e-9)
    );
}
