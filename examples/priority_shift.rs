//! Fig. 10's scenario as an example: the user rotates the high rank
//! between four concurrently running DNNs, and RankMap-S re-maps to honor
//! each change without starving anyone.
//!
//! ```bash
//! cargo run --release --example priority_shift
//! ```

use rankmap::prelude::*;

fn main() {
    let platform = Platform::orange_pi_5();
    let workload = Workload::from_ids([
        ModelId::MobileNetV2,
        ModelId::ShuffleNet,
        ModelId::AlexNet,
        ModelId::SqueezeNet,
    ]);
    let names: Vec<&str> = workload.models().iter().map(|m| m.name()).collect();
    let oracle = AnalyticalOracle::new(&platform);
    let manager = RankMapManager::new(&platform, &oracle, ManagerConfig::default());
    let board = EventEngine::new(&platform);
    let ideals: Vec<f64> = workload
        .models()
        .iter()
        .map(|m| board.ideal_rate(m.id(), ComponentId::new(0)))
        .collect();

    for stage in 0..4 {
        let plan = manager.map(&workload, &PriorityMode::critical(4, stage));
        let report = board.evaluate(&workload, &plan.mapping);
        let pots = report.potentials(&ideals);
        println!("\nstage {}: priority 0.7 -> {}", stage + 1, names[stage]);
        for (i, name) in names.iter().enumerate() {
            let mark = if i == stage { " *" } else { "  " };
            println!("  {name:<14}{mark} P = {:.3}", pots[i]);
            assert!(pots[i] >= STARVATION_POTENTIAL, "{name} starved");
        }
    }
    println!("\nno DNN was starved in any stage — the Fig. 10 property.");
}
