//! Fig. 10's scenario as an example: the user rotates the high rank
//! between four concurrently running DNNs *at runtime* — the rotation
//! arrives as `SetPriorities` events on the dynamic runtime, which routes
//! them into the mapper and re-maps incrementally (warm-started from the
//! incumbent, adopted only when the gain pays for the migration).
//!
//! ```bash
//! cargo run --release --example priority_shift
//! ```

use rankmap::core::runtime::{DynamicEvent, DynamicRuntime, RankMapMapper};
use rankmap::prelude::*;

fn main() {
    let platform = Platform::orange_pi_5();
    let models = [
        ModelId::MobileNetV2,
        ModelId::ShuffleNet,
        ModelId::AlexNet,
        ModelId::SqueezeNet,
    ];
    let names: Vec<&str> = models.iter().map(|m| m.name()).collect();

    // All four DNNs arrive at t=0; every 150 s the user hands the 0.7
    // rank to the next DNN (stage 1 starts under critical(4, 0)).
    let mut events: Vec<DynamicEvent> =
        models.iter().map(|&m| DynamicEvent::arrive(0.0, m)).collect();
    for stage in 1..4 {
        events.push(DynamicEvent::SetPriorities {
            at: 150.0 * stage as f64,
            mode: PriorityMode::critical(4, stage),
        });
    }

    let oracle = AnalyticalOracle::new(&platform);
    let manager = RankMapManager::new(&platform, &oracle, ManagerConfig::default());
    let mut mapper = RankMapMapper::new(manager, PriorityMode::critical(4, 0), "RankMapS");
    let runtime = DynamicRuntime::new(&platform, 150.0);
    let timeline = runtime.run(&events, &mut mapper, 600.0);

    for point in &timeline {
        if point.migration_stall > 0.0 {
            println!(
                "t={:>3.0}s  -- rank rotation remap: {:.1} ms stall --",
                point.time,
                point.migration_stall * 1e3
            );
            continue;
        }
        let stage = (point.time / 150.0) as usize;
        println!("\nt={:>3.0}s: priority 0.7 -> {}", point.time, names[stage.min(3)]);
        for (i, (name, p)) in names.iter().zip(&point.potentials).enumerate() {
            let mark = if i == stage { " *" } else { "  " };
            println!("  {name:<14}{mark} P = {p:.3}");
            assert!(*p >= STARVATION_POTENTIAL, "{name} starved");
        }
    }
    println!("\nno DNN was starved in any stage — the Fig. 10 property.");
}
