//! Observing a fleet under chaos: telemetry is switched on, a faulty
//! load runs, and the snapshot is unpacked — Prometheus metrics, the
//! per-shard time series, and the flight recorder's event → decision →
//! outcome chains. The run's *decisions* are bit-identical to the same
//! run with telemetry off (`crates/fleet/tests/telemetry.rs` proves it);
//! everything printed here is a free observation.
//!
//! ```bash
//! cargo run --release --example fleet_observed
//! ```

use rankmap::core::manager::ManagerConfig;
use rankmap::core::oracle::AnalyticalOracle;
use rankmap::fleet::{
    generate, ArrivalProcess, FaultSpec, FleetConfig, FleetRuntime, LoadSpec, TelemetrySpec,
};
use rankmap::prelude::*;

fn main() {
    let platform = Platform::orange_pi_5();
    let oracle = AnalyticalOracle::new(&platform);
    let shards = 4;

    // A diurnal load with a fault layer: outages and throttle episodes
    // give the flight recorder causality chains to capture.
    let spec = LoadSpec {
        horizon: 600.0,
        process: ArrivalProcess::Diurnal {
            mean_rate: 1.0 / 15.0,
            amplitude: 0.7,
            period: 300.0,
        },
        mean_lifetime: 180.0,
        priority_churn_rate: 1.0 / 200.0,
        seed: 42,
        faults: Some(FaultSpec {
            shards,
            mtbf: 250.0,
            mttr: 50.0,
            throttle_rate: 1.0 / 200.0,
            seed: 7,
            ..Default::default()
        }),
        ..Default::default()
    };
    let events = generate(&spec);

    // Telemetry on is one config field. `TelemetrySpec::on()` keeps the
    // wall clock out of the registry so exports replay byte-stable; add
    // `.with_wall_clock()` to also time stages on the host clock.
    let config = FleetConfig {
        manager: ManagerConfig {
            mcts_iterations: 120,
            warm_iterations: 60,
            ..Default::default()
        },
        retry_limit: 1,
        telemetry: TelemetrySpec::on(),
        ..Default::default()
    };
    let fleet = FleetRuntime::homogeneous(&platform, &oracle, shards, config);
    let outcome = fleet.execute(&events, spec.horizon);
    let snap = outcome.telemetry.as_ref().expect("telemetry was enabled");

    println!(
        "ran {} events over {:.0}s: {}/{} admitted, {} evacuated, {} shed\n",
        events.len(),
        spec.horizon,
        outcome.metrics.admitted,
        outcome.metrics.offered,
        outcome.metrics.evacuated,
        outcome.metrics.shed,
    );

    // 1. The registry, Prometheus-style. Counters and gauges one sample
    //    per line; histograms as _count/_sum plus quantile samples.
    println!("── prometheus exposition (excerpt) ──");
    for line in snap.to_prometheus().lines().take(18) {
        println!("{line}");
    }

    // 2. Individual reads: the snapshot overlays cache totals from the
    //    structures that own them.
    let r = &snap.registry;
    println!("\n── cache effectiveness ──");
    println!(
        "probe memo: {} hits / {} misses ({} entries retained)",
        r.counter("fleet_probe_memo_hits_total"),
        r.counter("fleet_probe_memo_misses_total"),
        r.gauge("fleet_probe_memo_entries").unwrap_or(0.0),
    );
    println!(
        "plan cache: {} hits / {} misses (summed over shards)",
        r.counter("fleet_plan_cache_hits_total"),
        r.counter("fleet_plan_cache_misses_total"),
    );

    // 3. Per-shard time series, sampled on the simulation clock.
    println!("\n── shard 0 time series (sim-clock samples) ──");
    for (t, s) in snap.series[0].iter().take(8) {
        println!(
            "t={t:>5.0}s  live={} derate={:.2} epoch={} {}",
            s.live,
            s.derate,
            s.epoch,
            if s.down { "DOWN" } else { "up" },
        );
    }

    // 4. The flight recorder: every outage's evacuate/shed records link
    //    back to the shard_down that caused them via `cause`.
    println!("\n── flight recorder (first consequential outage chain) ──");
    // The first shard_down with linked consequences (an outage on an
    // empty shard triages nothing and links nothing).
    let consequential = snap.recorder.records().find(|down| {
        down.kind == "shard_down"
            && snap.recorder.records().any(|rec| rec.cause == Some(down.seq))
    });
    if let Some(down) = consequential {
        println!("seq={} t={:.1}s {}", down.seq, down.at, down.kind);
        for rec in snap.recorder.records().filter(|rec| rec.cause == Some(down.seq)) {
            let fields: Vec<String> =
                rec.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
            println!(
                "  └ seq={} t={:.1}s {} [{}]",
                rec.seq,
                rec.at,
                rec.kind,
                fields.join(", ")
            );
        }
    } else {
        println!("(no outage fired under this seed)");
    }
    println!(
        "\n{} flight records retained ({} dropped); JSONL export: {} bytes",
        snap.recorder.len(),
        snap.recorder.dropped(),
        snap.flight_jsonl().len(),
    );
}
