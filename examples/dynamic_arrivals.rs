//! Fig. 8's scenario as an example: DNNs of very different weights arrive
//! over ten minutes; RankMap-D keeps even the heavy Inception-ResNet-V1
//! alive while OmniBoost (mean-throughput greedy) starves it.
//!
//! ```bash
//! cargo run --release --example dynamic_arrivals
//! ```

use rankmap::baselines::OmniBoost;
use rankmap::core::manager::{ManagerConfig, RankMapManager};
use rankmap::core::runtime::{DynamicEvent, DynamicRuntime, RankMapMapper, WorkloadMapper};
use rankmap::prelude::*;

fn main() {
    let platform = Platform::orange_pi_5();
    let events = vec![
        DynamicEvent::Arrive { at: 0.0, model: ModelId::InceptionResnetV1 },
        DynamicEvent::Arrive { at: 150.0, model: ModelId::AlexNet },
        DynamicEvent::Arrive { at: 300.0, model: ModelId::SqueezeNet },
        DynamicEvent::Arrive { at: 450.0, model: ModelId::ResNet50 },
    ];
    let oracle = AnalyticalOracle::new(&platform);
    let runtime = DynamicRuntime::new(&platform, 150.0);

    let mut mappers: Vec<Box<dyn WorkloadMapper>> = vec![
        Box::new(RankMapMapper::new(
            RankMapManager::new(&platform, &oracle, ManagerConfig::default()),
            PriorityMode::Dynamic,
            "RankMapD",
        )),
        Box::new(OmniBoost::new(&platform, &oracle, 1_000, 7)),
    ];

    for mapper in &mut mappers {
        println!("\n=== {} ===", mapper.name());
        let timeline = runtime.run(&events, mapper.as_mut(), 600.0);
        for point in &timeline {
            print!("t={:>3.0}s ", point.time);
            for (id, p) in point.models.iter().zip(&point.potentials) {
                let starved = if *p < STARVATION_POTENTIAL { "!" } else { "" };
                print!(" {}={:.2}{}", id.name(), p, starved);
            }
            println!();
        }
        let starved: usize = timeline
            .iter()
            .flat_map(|p| p.potentials.iter())
            .filter(|&&p| p < STARVATION_POTENTIAL)
            .count();
        println!("starved samples: {starved}");
    }
}
