//! Fig. 8's scenario as an example: DNNs of very different weights arrive
//! over ten minutes (and one departs by its stable instance id); RankMap-D
//! keeps even the heavy Inception-ResNet-V1 alive while OmniBoost
//! (mean-throughput greedy) starves it. RankMap's remaps are incremental:
//! warm-started from the incumbent placements, adopted only when the
//! predicted gain pays for the migration stall — which the timeline
//! surfaces as zero-throughput points.
//!
//! ```bash
//! cargo run --release --example dynamic_arrivals
//! ```

use rankmap::baselines::OmniBoost;
use rankmap::core::manager::{ManagerConfig, RankMapManager};
use rankmap::core::runtime::{DynamicEvent, DynamicRuntime, InstanceId, RankMapMapper, WorkloadMapper};
use rankmap::prelude::*;

fn main() {
    let platform = Platform::orange_pi_5();
    let events = vec![
        DynamicEvent::arrive(0.0, ModelId::InceptionResnetV1),
        DynamicEvent::arrive(150.0, ModelId::AlexNet),
        DynamicEvent::arrive(300.0, ModelId::SqueezeNet),
        DynamicEvent::arrive(450.0, ModelId::ResNet50),
        // AlexNet (the second arrival, instance #1) leaves at t=525.
        DynamicEvent::depart(525.0, InstanceId::new(1)),
    ];
    let oracle = AnalyticalOracle::new(&platform);
    let runtime = DynamicRuntime::new(&platform, 150.0);

    let mut mappers: Vec<Box<dyn WorkloadMapper>> = vec![
        Box::new(RankMapMapper::new(
            RankMapManager::new(&platform, &oracle, ManagerConfig::default()),
            PriorityMode::Dynamic,
            "RankMapD",
        )),
        Box::new(OmniBoost::new(&platform, &oracle, 1_000, 7)),
    ];

    for mapper in &mut mappers {
        println!("\n=== {} ===", mapper.name());
        let timeline = runtime.run(&events, mapper.as_mut(), 600.0);
        for point in &timeline {
            if point.migration_stall > 0.0 {
                println!(
                    "t={:>3.0}s  -- remap stall: {:.1} ms of weight transfer --",
                    point.time,
                    point.migration_stall * 1e3
                );
                continue;
            }
            print!("t={:>3.0}s ", point.time);
            for ((id, inst), p) in point
                .models
                .iter()
                .zip(&point.instances)
                .zip(&point.potentials)
            {
                let starved = if *p < STARVATION_POTENTIAL { "!" } else { "" };
                print!(" {}{}={:.2}{}", id.name(), inst, p, starved);
            }
            println!();
        }
        let starved: usize = timeline
            .iter()
            .filter(|p| p.migration_stall == 0.0)
            .flat_map(|p| p.potentials.iter())
            .filter(|&&p| p < STARVATION_POTENTIAL)
            .count();
        println!("starved samples: {starved}");
    }
}
