//! Fleet serving end to end: a bursty load hits a 4-board fleet, the
//! admission layer routes (and rejects) by predicted potential delta, the
//! run is recorded to a JSONL trace, and the trace replays bit-for-bit.
//!
//! ```bash
//! cargo run --release --example fleet_serving
//! ```

use rankmap::core::manager::ManagerConfig;
use rankmap::core::oracle::AnalyticalOracle;
use rankmap::fleet::{
    generate, ArrivalProcess, FleetConfig, FleetRuntime, LoadSpec, Parallelism,
    PlacementOutcome, Trace, TraceMeta,
};
use rankmap::prelude::*;

fn main() {
    let platform = Platform::orange_pi_5();
    let oracle = AnalyticalOracle::new(&platform);
    let shards = 4;

    // A berserker-style on/off load: bursts of arrivals, quiet idles.
    let spec = LoadSpec {
        horizon: 900.0,
        process: ArrivalProcess::OnOff {
            burst_rate: 0.3,
            idle_rate: 0.01,
            mean_burst: 60.0,
            mean_idle: 120.0,
        },
        mean_lifetime: 200.0,
        priority_churn_rate: 1.0 / 300.0,
        seed: 42,
        ..Default::default()
    };
    let events = generate(&spec);
    println!(
        "offered load: {} events over {:.0}s (~{:.2} arrivals/min mean)",
        events.len(),
        spec.horizon,
        spec.process.mean_rate() * 60.0
    );

    let config = FleetConfig {
        manager: ManagerConfig {
            mcts_iterations: 200,
            warm_iterations: 80,
            plan_cache_capacity: 256,
            ..Default::default()
        },
        // The shard-parallel executor: per-shard work between event
        // barriers fans across 4 worker threads. Outcomes are
        // bit-identical to Parallelism::Sequential at any width — the
        // replay assert at the bottom crosses executor modes to prove it.
        parallelism: Parallelism::Threads(4),
        ..Default::default()
    };
    let fleet = FleetRuntime::homogeneous(&platform, &oracle, shards, config.clone());
    let outcome = fleet.execute(&events, spec.horizon);

    let m = &outcome.metrics;
    println!(
        "\n{} shards: admitted {}/{} ({} rejected), {} rebalance migrations",
        m.shards, m.admitted, m.offered, m.rejected, m.migrations
    );
    for (s, (pot, adm)) in
        m.per_shard_potential.iter().zip(&m.per_shard_admitted).enumerate()
    {
        println!("  shard-{s}: {adm:>2} admitted, timeline potential {pot:.3}");
    }
    println!(
        "aggregate fleet potential: {:.1} pot·s | placement latency p50 {:?} p99 {:?}",
        m.aggregate_potential_seconds, outcome.placement_latency.p50,
        outcome.placement_latency.p99
    );
    let rejections: Vec<String> = outcome
        .placements
        .iter()
        .filter(|r| r.outcome == PlacementOutcome::Rejected)
        .map(|r| format!("{}@{:.0}s", r.request, r.at))
        .collect();
    if !rejections.is_empty() {
        println!("rejected: {}", rejections.join(", "));
    }

    // Record the run and replay it from the trace — on the *sequential*
    // reference executor: bit-identical metrics across both the trace
    // round-trip and the executor modes.
    let trace = Trace::new(TraceMeta::new(shards, spec.horizon, spec.seed, "example"), events);
    let jsonl = trace.to_jsonl();
    println!("\ntrace: {} JSONL bytes; replaying on the sequential executor...", jsonl.len());
    let replayed = FleetRuntime::homogeneous(
        &platform,
        &oracle,
        shards,
        FleetConfig { parallelism: Parallelism::Sequential, ..config },
    )
    .execute_trace(&Trace::from_jsonl(&jsonl).expect("trace parses"));
    assert_eq!(replayed.metrics, outcome.metrics, "replay must be bit-identical");
    println!("sequential replay reproduced the threaded run's metrics bit-for-bit.");
}
