//! # RankMap
//!
//! A priority-aware multi-DNN manager for heterogeneous embedded devices —
//! a full Rust reproduction of *RankMap* (Karatzas, Stamoulis,
//! Anagnostopoulos; DATE 2025).
//!
//! This facade crate re-exports the workspace:
//!
//! | Crate | What it holds |
//! |---|---|
//! | [`platform`] | Component/platform descriptions (Orange Pi 5 preset) |
//! | [`models`] | The 24-architecture DNN zoo with Equation-1 layer features |
//! | [`sim`] | The simulated board: roofline costs, contention, event engine |
//! | [`nn`] | Tensor + backprop micro-framework |
//! | [`estimator`] | VQ-VAE and the multi-task attention throughput estimator |
//! | [`search`] | UCT Monte-Carlo Tree Search |
//! | [`core`] | Priorities, reward, the manager, training, dynamic runtime |
//! | [`fleet`] | Multi-device sharding, admission/placement, trace-driven load |
//! | [`baselines`] | Baseline/MOSAIC/ODMDEF/GA/OmniBoost comparison managers |
//!
//! # Example
//!
//! ```
//! use rankmap::prelude::*;
//!
//! let platform = Platform::orange_pi_5();
//! let workload = Workload::from_ids([ModelId::AlexNet, ModelId::SqueezeNetV2]);
//! let oracle = AnalyticalOracle::new(&platform);
//! let manager = RankMapManager::new(
//!     &platform,
//!     &oracle,
//!     ManagerConfig { mcts_iterations: 200, ..Default::default() },
//! );
//! let plan = manager.map(&workload, &PriorityMode::Dynamic);
//! assert!(plan.mapping.validate(&workload, platform.component_count()).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rankmap_baselines as baselines;
pub use rankmap_core as core;
pub use rankmap_estimator as estimator;
pub use rankmap_fleet as fleet;
pub use rankmap_models as models;
pub use rankmap_nn as nn;
pub use rankmap_platform as platform;
pub use rankmap_search as search;
pub use rankmap_sim as sim;

/// One-stop imports (re-export of [`rankmap_core::prelude`]).
pub mod prelude {
    pub use rankmap_core::prelude::*;
}
