//! Offline stand-in for the slice of the `rayon` API this workspace uses.
//!
//! The build environment has no network access, so this crate implements
//! the handful of rayon entry points the hot path consumes on top of
//! `std::thread::scope`. Semantics match rayon for this subset: work is
//! split across `current_num_threads()` OS threads, results come back in
//! input order, and on a single-core host everything degrades to the
//! serial path with zero spawn overhead.

#![forbid(unsafe_code)]

use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// Number of worker threads the pool-less pool would use. Honors
/// `RAYON_NUM_THREADS` like the real crate; defaults to the machine's
/// available parallelism.
pub fn current_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
            })
    })
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join worker panicked"))
    })
}

/// Parallel iteration entry points, in the style of `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{IntoParallelRefIterator, ParallelIterator};
}

/// Minimal parallel-iterator implementation: `par_iter().map(f).collect()`
/// over slices, preserving input order.
pub mod iter {
    use crate::current_num_threads;

    /// `&self → parallel iterator` conversion (slices and `Vec`s).
    pub trait IntoParallelRefIterator<'a> {
        /// Item yielded by the parallel iterator.
        type Item: Sync + 'a;
        /// Borrowing parallel iterator over the collection.
        fn par_iter(&'a self) -> ParSlice<'a, Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = T;
        fn par_iter(&'a self) -> ParSlice<'a, T> {
            ParSlice { items: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = T;
        fn par_iter(&'a self) -> ParSlice<'a, T> {
            ParSlice { items: self }
        }
    }

    /// Borrowing parallel iterator over a slice.
    pub struct ParSlice<'a, T> {
        items: &'a [T],
    }

    /// Mapped parallel iterator.
    pub struct ParMap<'a, T, F> {
        items: &'a [T],
        f: F,
    }

    impl<'a, T: Sync> ParSlice<'a, T> {
        /// Applies `f` to every element (in parallel when beneficial).
        pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
        where
            F: Fn(&'a T) -> R + Sync,
            R: Send,
        {
            ParMap { items: self.items, f }
        }
    }

    /// The subset of rayon's `ParallelIterator` the workspace needs.
    pub trait ParallelIterator {
        /// Item type produced by the iterator.
        type Item: Send;

        /// Materializes the results, preserving input order.
        fn collect<C: From<Vec<Self::Item>>>(self) -> C;
    }

    impl<'a, T, R, F> ParallelIterator for ParMap<'a, T, F>
    where
        T: Sync,
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        type Item = R;

        fn collect<C: From<Vec<R>>>(self) -> C {
            par_map_slice(self.items, &self.f).into()
        }
    }

    /// Order-preserving parallel map over a slice: the building block both
    /// the iterator facade above and direct callers use.
    pub fn par_map_slice<'a, T, R, F>(items: &'a [T], f: &F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        let threads = current_num_threads().min(items.len().max(1));
        if threads <= 1 || items.len() <= 1 {
            return items.iter().map(f).collect();
        }
        let chunk = items.len().div_ceil(threads);
        let mut out: Vec<Vec<R>> = Vec::with_capacity(threads);
        std::thread::scope(|s| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .map(|c| s.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
                .collect();
            for h in handles {
                out.push(h.join().expect("rayon worker panicked"));
            }
        });
        out.into_iter().flatten().collect()
    }

    /// Order-preserving parallel map over a slice with **exclusive** access
    /// to each element (the shim's stand-in for
    /// `par_iter_mut().enumerate().map(...)`). `f` receives each element's
    /// index alongside the `&mut` reference, because chunked workers would
    /// otherwise lose the position.
    ///
    /// Unlike [`par_map_slice`], the fan-out width is the caller's
    /// `max_threads` (clamped to the item count), not the global pool size:
    /// a deterministic executor chooses its own width and must get exactly
    /// that concurrency regardless of the host's core count. Results come
    /// back in input order; `max_threads <= 1` degrades to a serial loop
    /// with zero spawn overhead.
    pub fn par_map_slice_mut<T, R, F>(items: &mut [T], max_threads: usize, f: &F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        let threads = max_threads.min(items.len().max(1));
        if threads <= 1 || items.len() <= 1 {
            return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let chunk = items.len().div_ceil(threads);
        let mut out: Vec<Vec<R>> = Vec::with_capacity(threads);
        std::thread::scope(|s| {
            let handles: Vec<_> = items
                .chunks_mut(chunk)
                .enumerate()
                .map(|(c, part)| {
                    let base = c * chunk;
                    s.spawn(move || {
                        part.iter_mut()
                            .enumerate()
                            .map(|(i, t)| f(base + i, t))
                            .collect::<Vec<R>>()
                    })
                })
                .collect();
            for h in handles {
                out.push(h.join().expect("rayon worker panicked"));
            }
        });
        out.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::iter::par_map_slice;
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..100).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn empty_slice_ok() {
        let v: Vec<u32> = Vec::new();
        let out = par_map_slice(&v, &|&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn mut_map_mutates_every_element_in_order() {
        use super::iter::par_map_slice_mut;
        for width in [1usize, 2, 4, 16] {
            let mut v: Vec<usize> = vec![0; 23];
            let out = par_map_slice_mut(&mut v, width, &|i, slot| {
                *slot = i * 10;
                i
            });
            assert_eq!(out, (0..23).collect::<Vec<_>>(), "width {width}");
            assert_eq!(v, (0..23).map(|i| i * 10).collect::<Vec<_>>(), "width {width}");
        }
    }

    #[test]
    fn mut_map_empty_and_single() {
        use super::iter::par_map_slice_mut;
        let mut empty: Vec<u8> = Vec::new();
        assert!(par_map_slice_mut(&mut empty, 8, &|_, x| *x).is_empty());
        let mut one = vec![7u8];
        assert_eq!(par_map_slice_mut(&mut one, 8, &|i, x| (i, *x)), vec![(0, 7)]);
    }
}
