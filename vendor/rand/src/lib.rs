//! Offline stand-in for the parts of the `rand` crate this workspace uses.
//!
//! The build environment has no network access, so instead of the real
//! `rand` we vendor a small, dependency-free implementation of exactly the
//! API surface the workspace consumes: [`rngs::StdRng`], [`SeedableRng`],
//! [`Rng::gen_range`] / [`Rng::gen_bool`], and [`seq::SliceRandom`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast, high
//! quality, and fully deterministic given a seed, which is all the
//! reproduction needs (search/test reproducibility, not cryptography).
//! The stream differs from upstream `rand`'s StdRng (ChaCha12); nothing in
//! the workspace depends on the exact stream, only on determinism.

#![forbid(unsafe_code)]

/// Types that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core random-number generation: a 64-bit output stream.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// High-level sampling helpers, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`Range` or `RangeInclusive`, integer or
    /// float element types).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps 32 random bits to a uniform `f32` in `[0, 1)`.
fn unit_f32(bits: u32) -> f32 {
    (bits >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (Blackman & Vigna),
    /// seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Uniform-range sampling machinery (mirrors `rand::distributions::uniform`).
pub mod distributions {
    /// Range sampling traits.
    pub mod uniform {
        use crate::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// A range that a uniform `T` can be drawn from.
        pub trait SampleRange<T> {
            /// Draws one uniform sample.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        macro_rules! int_range_impls {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let span = (self.end as i128 - self.start as i128) as u128;
                        let v = widening_mod(rng.next_u64(), span);
                        (self.start as i128 + v as i128) as $t
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "cannot sample empty range");
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        let v = widening_mod(rng.next_u64(), span);
                        (lo as i128 + v as i128) as $t
                    }
                }
            )*};
        }

        int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        /// `x mod span` through a 128-bit multiply (Lemire reduction): an
        /// unbiased-enough map of 64 random bits into `[0, span)` without
        /// division.
        fn widening_mod(x: u64, span: u128) -> u128 {
            ((x as u128).wrapping_mul(span)) >> 64
        }

        macro_rules! float_range_impls {
            ($($t:ty => $unit:path),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let u = $unit(rng.next_u64() as _);
                        self.start + (self.end - self.start) * u
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "cannot sample empty range");
                        let u = $unit(rng.next_u64() as _);
                        lo + (hi - lo) * u
                    }
                }
            )*};
        }

        float_range_impls!(f32 => super::super::unit_f32_pub, f64 => super::super::unit_f64_pub);
    }
}

// Crate-private helpers re-exposed for the macro above.
#[doc(hidden)]
pub fn unit_f64_pub(bits: u64) -> f64 {
    unit_f64(bits)
}

#[doc(hidden)]
pub fn unit_f32_pub(bits: u32) -> f32 {
    unit_f32(bits)
}

/// Sequence helpers (mirrors `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&y));
            let z: f32 = rng.gen_range(-1.0f32..=1.0);
            assert!((-1.0..=1.0).contains(&z));
            let w: usize = rng.gen_range(1..=3);
            assert!((1..=3).contains(&w));
        }
    }

    #[test]
    fn gen_bool_probabilities() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 20 elements should move something");
    }
}
