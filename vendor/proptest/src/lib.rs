//! Offline stand-in for the slice of the `proptest` API this workspace
//! uses: `proptest!`, `prop_compose!`, `prop_assert*!`, `any::<T>()`,
//! integer-range strategies, `prop_map`, and `prop::collection::vec`.
//!
//! Cases are generated from a deterministic per-test RNG (seeded from the
//! test name and case index), so failures are reproducible run to run.
//! There is no shrinking: a failing case reports its inputs' case index
//! and the assertion message.

#![forbid(unsafe_code)]

pub use rand;

/// Strategy abstraction and combinators.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values for property tests.
    pub trait Strategy {
        /// The value type generated.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy wrapping a sampling closure (used by `prop_compose!`).
    pub struct FnStrategy<T, F> {
        f: F,
        _marker: PhantomData<fn() -> T>,
    }

    impl<T, F: Fn(&mut StdRng) -> T> FnStrategy<T, F> {
        /// Wraps a closure as a strategy.
        pub fn new(f: F) -> Self {
            Self { f, _marker: PhantomData }
        }
    }

    impl<T, F: Fn(&mut StdRng) -> T> Strategy for FnStrategy<T, F> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            (self.f)(rng)
        }
    }

    macro_rules! range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    float_range_strategies!(f32, f64);

    /// Strategy for "any value of `T`" (full-range integers).
    pub struct Any<T> {
        _marker: PhantomData<fn() -> T>,
    }

    /// Types usable with [`any`].
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    use rand::RngCore;
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy for an arbitrary `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any { _marker: PhantomData }
    }
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for collection strategies. The dedicated
    /// conversion type (rather than a generic `usize` strategy) pins
    /// unsuffixed integer literals like `1..=3` to `usize`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            Self { lo: *r.start(), hi: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `lengths`.
    pub struct VecStrategy<S> {
        element: S,
        lengths: SizeRange,
    }

    /// Creates a [`VecStrategy`]. `lengths` is a range like `1..=3`.
    pub fn vec<S: Strategy>(element: S, lengths: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, lengths: lengths.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.lengths.lo..=self.lengths.hi);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Test-runner configuration and failure plumbing.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    /// Per-test configuration (`cases` = number of generated inputs).
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl Config {
        /// Configuration running `cases` random inputs per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// A failed property assertion.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Wraps a failure message.
        pub fn fail(message: String) -> Self {
            Self { message }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic RNG for a (test, case) pair: reproducible failures
    /// without a persistence file.
    pub fn case_rng(test_name: &str, case: u32) -> StdRng {
        let mut h = DefaultHasher::new();
        test_name.hash(&mut h);
        case.hash(&mut h);
        StdRng::seed_from_u64(h.finish())
    }
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, proptest};
}

/// Asserts a condition inside a `proptest!` body; on failure the current
/// case aborts with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Defines property tests: each `fn` body runs once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg = $cfg;
            for case in 0..cfg.cases {
                let mut rng = $crate::test_runner::case_rng(stringify!($name), case);
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                #[allow(unused_mut)]
                let mut run = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                if let ::std::result::Result::Err(e) = run() {
                    panic!("proptest case {case} of {}: {e}", stringify!($name));
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Defines a named strategy function out of argument strategies
/// (mirrors `proptest::prop_compose!`).
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])*
     $vis:vis fn $name:ident($($arg:ident: $argty:ty),* $(,)?)
                            ($($pat:pat_param in $strat:expr),+ $(,)?)
                            -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy::new(move |rng: &mut $crate::rand::rngs::StdRng| {
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), rng);)+
                $body
            })
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn pair(max: usize)(a in 0..max, b in 0..max) -> (usize, usize) {
            (a, b)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_bounded(x in 3usize..9) {
            prop_assert!((3..9).contains(&x));
        }

        #[test]
        fn composed_pairs_bounded((a, b) in pair(5)) {
            prop_assert!(a < 5 && b < 5);
            prop_assert_ne!(5usize, a);
        }

        #[test]
        fn any_and_map(seed in any::<u64>(), n in (1usize..4).prop_map(|v| v * 2)) {
            let _ = seed;
            prop_assert!(n == 2 || n == 4 || n == 6);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn collections_sized(v in prop::collection::vec(0usize..5, 1..=3)) {
            prop_assert!((1..=3).contains(&v.len()));
            for x in &v {
                prop_assert!(*x < 5);
            }
        }
    }
}
