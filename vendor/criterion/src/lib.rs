//! Offline stand-in for the slice of the `criterion` API this workspace
//! uses. Wall-clock benchmarking with warm-up, fixed sample counts, and
//! median/mean reporting — no plots, no statistical regression testing.
//!
//! Two extensions over upstream criterion, used by the perf harness:
//! * [`Criterion::json_output`] — write every measurement (median/mean
//!   ns per iteration) to a JSON file when the run finishes.
//! * [`Criterion::results`] — programmatic access to the measurements.

#![forbid(unsafe_code)]

use std::cell::RefCell;
use std::hint;
use std::path::PathBuf;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The stand-in runs one setup
/// per measured invocation regardless of the hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// One benchmark's aggregated measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark id (`group/name` when inside a group).
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Number of measured samples.
    pub samples: usize,
}

#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
    measurement: Duration,
    warm_up: Duration,
}

/// Benchmark driver (mirrors `criterion::Criterion`).
pub struct Criterion {
    settings: Settings,
    json_path: Option<PathBuf>,
    results: Rc<RefCell<Vec<BenchResult>>>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            settings: Settings {
                sample_size: 20,
                measurement: Duration::from_secs(2),
                warm_up: Duration::from_millis(300),
            },
            json_path: None,
            results: Rc::new(RefCell::new(Vec::new())),
        }
    }
}

impl Criterion {
    /// Number of measured samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Target total measurement time per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.settings.measurement = d;
        self
    }

    /// Warm-up time before measuring.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.settings.warm_up = d;
        self
    }

    /// Writes all results as JSON to `path` when the run finishes
    /// (`criterion_main!` calls [`Criterion::final_summary`]).
    #[must_use]
    pub fn json_output(mut self, path: impl Into<PathBuf>) -> Self {
        self.json_path = Some(path.into());
        self
    }

    /// Measurements collected so far.
    pub fn results(&self) -> Vec<BenchResult> {
        self.results.borrow().clone()
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let settings = self.settings.clone();
        let result = run_bench(id, &settings, &mut f);
        report(&result);
        self.results.borrow_mut().push(result);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            settings: self.settings.clone(),
            parent: self,
        }
    }

    /// Finishes the run: writes the JSON report when configured.
    pub fn final_summary(&self) {
        if let Some(path) = &self.json_path {
            let results = self.results.borrow();
            let mut out = String::from("{\n  \"benchmarks\": [\n");
            for (i, r) in results.iter().enumerate() {
                out.push_str(&format!(
                    "    {{\"id\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"samples\": {}}}{}\n",
                    r.id,
                    r.median_ns,
                    r.mean_ns,
                    r.samples,
                    if i + 1 < results.len() { "," } else { "" }
                ));
            }
            out.push_str("  ]\n}\n");
            if let Err(e) = std::fs::write(path, out) {
                eprintln!("criterion: failed to write {}: {e}", path.display());
            } else {
                println!("criterion: wrote {}", path.display());
            }
        }
    }
}

/// A group of related benchmarks sharing settings overrides.
pub struct BenchmarkGroup<'c> {
    name: String,
    settings: Settings,
    parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Overrides the measurement time for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement = d;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let result = run_bench(&full, &self.settings, &mut f);
        report(&result);
        self.parent.results.borrow_mut().push(result);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Per-benchmark measurement context handed to the closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `f` called `iters` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Measures `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, settings: &Settings, f: &mut F) -> BenchResult {
    // Warm up and estimate the per-iteration cost.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    while warm_start.elapsed() < settings.warm_up {
        f(&mut b);
        per_iter = (b.elapsed / b.iters as u32).max(Duration::from_nanos(1));
    }
    // Pick an iteration count so that sample_size samples fit the
    // measurement budget.
    let per_sample = settings.measurement.as_nanos() / settings.sample_size.max(1) as u128;
    let iters = (per_sample / per_iter.as_nanos().max(1)).clamp(1, u64::MAX as u128) as u64;
    let mut samples_ns: Vec<f64> = Vec::with_capacity(settings.sample_size);
    for _ in 0..settings.sample_size {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let median_ns = samples_ns[samples_ns.len() / 2];
    let mean_ns = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
    BenchResult { id: id.to_string(), median_ns, mean_ns, samples: samples_ns.len() }
}

fn report(r: &BenchResult) {
    let (value, unit) = humanize(r.median_ns);
    println!("{:<40} time: [{value:.3} {unit}/iter] (median of {})", r.id, r.samples);
}

fn humanize(ns: f64) -> (f64, &'static str) {
    if ns < 1e3 {
        (ns, "ns")
    } else if ns < 1e6 {
        (ns / 1e3, "µs")
    } else if ns < 1e9 {
        (ns / 1e6, "ms")
    } else {
        (ns / 1e9, "s")
    }
}

/// Declares a benchmark group function (mirrors `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main` (mirrors `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        c.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let results = c.results();
        assert_eq!(results.len(), 1);
        assert!(results[0].median_ns > 0.0);
    }

    #[test]
    fn groups_prefix_ids() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2));
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_function("x", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
        assert_eq!(c.results()[0].id, "grp/x");
    }

    #[test]
    fn json_output_writes_file() {
        let path = std::env::temp_dir().join("criterion_shim_test.json");
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2))
            .json_output(&path);
        c.bench_function("j", |b| b.iter(|| black_box(2 * 2)));
        c.final_summary();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"id\": \"j\""));
        let _ = std::fs::remove_file(&path);
    }
}
