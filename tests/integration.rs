//! Cross-crate integration tests: the paper's headline properties checked
//! end to end on the simulated board.

use rankmap::baselines::{BaselineGpu, Mosaic, Odmdef, OmniBoost};
use rankmap::core::manager::{ManagerConfig, RankMapManager};
use rankmap::core::metrics;
use rankmap::core::runtime::WorkloadMapper;
use rankmap::prelude::*;

fn quick_manager_cfg() -> ManagerConfig {
    ManagerConfig { mcts_iterations: 600, ..Default::default() }
}

#[test]
fn rankmap_beats_baseline_on_average_throughput() {
    let platform = Platform::orange_pi_5();
    let oracle = AnalyticalOracle::new(&platform);
    let manager = RankMapManager::new(&platform, &oracle, quick_manager_cfg());
    let board = EventEngine::quick(&platform);
    let workload = Workload::from_ids([
        ModelId::SqueezeNetV2,
        ModelId::ResNet50,
        ModelId::MobileNet,
        ModelId::AlexNet,
    ]);
    let plan = manager.map(&workload, &PriorityMode::Dynamic);
    let ours = board.evaluate(&workload, &plan.mapping).average();
    let base = board
        .evaluate(&workload, &Mapping::uniform(&workload, ComponentId::new(0)))
        .average();
    assert!(ours > base * 1.5, "RankMapD should clearly beat all-GPU: {ours} vs {base}");
}

#[test]
fn rankmap_never_starves_what_it_qualifies() {
    let platform = Platform::orange_pi_5();
    let oracle = AnalyticalOracle::new(&platform);
    let manager = RankMapManager::new(&platform, &oracle, quick_manager_cfg());
    let board = EventEngine::quick(&platform);
    let workload = Workload::from_ids([
        ModelId::GoogleNet,
        ModelId::MobileNetV2,
        ModelId::SqueezeNet,
    ]);
    let plan = manager.map(&workload, &PriorityMode::Dynamic);
    assert!(plan.qualified(), "a 3-DNN mix must have qualifying mappings");
    let ideals: Vec<f64> = workload
        .models()
        .iter()
        .map(|m| board.ideal_rate(m.id(), ComponentId::new(0)))
        .collect();
    let pots = board.evaluate(&workload, &plan.mapping).potentials(&ideals);
    assert_eq!(
        metrics::starved_count(&pots),
        0,
        "RankMap must not starve any DNN: {pots:?}"
    );
}

#[test]
fn priority_shifts_move_potential() {
    let platform = Platform::orange_pi_5();
    let oracle = AnalyticalOracle::new(&platform);
    let manager = RankMapManager::new(&platform, &oracle, quick_manager_cfg());
    let board = EventEngine::quick(&platform);
    let workload = Workload::from_ids([ModelId::InceptionV3, ModelId::ResNet50, ModelId::Vgg16]);
    let ideals: Vec<f64> = workload
        .models()
        .iter()
        .map(|m| board.ideal_rate(m.id(), ComponentId::new(0)))
        .collect();
    // Average over the three possible critical choices: the critical DNN's
    // potential should be at least the mean of its potential when others
    // are critical.
    let mut gain = 0.0;
    for critical in 0..3 {
        let plan = manager.map(&workload, &PriorityMode::critical(3, critical));
        let pots = board.evaluate(&workload, &plan.mapping).potentials(&ideals);
        let others: f64 = (0..3).filter(|&i| i != critical).map(|i| pots[i]).sum::<f64>() / 2.0;
        gain += pots[critical] - others * 0.0; // track absolute potential
        assert!(
            pots[critical] > STARVATION_POTENTIAL,
            "critical DNN must not starve"
        );
    }
    assert!(gain > 0.0);
}

#[test]
fn all_managers_produce_valid_mappings() {
    let platform = Platform::orange_pi_5();
    let pool = vec![
        ModelId::AlexNet,
        ModelId::MobileNet,
        ModelId::ResNet50,
        ModelId::SqueezeNetV2,
    ];
    let workload = Workload::from_ids(pool.iter().copied());
    let oracle = AnalyticalOracle::new(&platform);
    let mut mappers: Vec<Box<dyn WorkloadMapper>> = vec![
        Box::new(BaselineGpu::new(&platform)),
        Box::new(Mosaic::new(&platform, &pool)),
        Box::new(Odmdef::new(&platform, &pool, 40, 3)),
        Box::new(OmniBoost::new(&platform, &oracle, 200, 0)),
    ];
    for mapper in &mut mappers {
        let m = mapper.remap(&workload);
        assert!(
            m.validate(&workload, platform.component_count()).is_ok(),
            "{} produced an invalid mapping",
            mapper.name()
        );
    }
}

#[test]
fn learned_pipeline_end_to_end_smoke() {
    // A miniature version of the full learned path: tiny dataset, tiny
    // training, then a search with the learned oracle.
    use rankmap::core::dataset::{self, DatasetConfig};
    use rankmap::core::oracle::LearnedOracle;
    use rankmap::estimator::{
        EmbeddingTable, Estimator, EstimatorConfig, QTensorSpec, Trainer, TrainerConfig, VqVae,
        VqVaeConfig,
    };

    let platform = Platform::orange_pi_5();
    let pool = vec![ModelId::AlexNet, ModelId::SqueezeNetV2, ModelId::MobileNet];
    let labelled = dataset::generate(
        &platform,
        &DatasetConfig { samples: 24, max_dnns: 3, pool: pool.clone(), seed: 5 },
    );
    let mut vqvae = VqVae::new(VqVaeConfig::default(), 5);
    let built: Vec<_> = pool.iter().map(|id| id.build()).collect();
    rankmap::estimator::vqvae::train_on_pool(&mut vqvae, &built, 4);
    let spec = QTensorSpec::default();
    let mut table = EmbeddingTable::build(&mut vqvae, &built);
    let samples = dataset::to_samples(&labelled, &mut vqvae, &mut table, &spec);
    let mut est = Estimator::new(EstimatorConfig::quick(), 5);
    Trainer::new(TrainerConfig { epochs: 2, ..Default::default() })
        .train(&mut est, &samples, &[]);
    let ideals = dataset::ideal_rates(&platform, &pool);
    let oracle = LearnedOracle::new(
        vqvae,
        table,
        est,
        Box::new(move |id| ideals.get(&id).copied().unwrap_or(1.0)),
    );
    let manager = RankMapManager::new(
        &platform,
        &oracle,
        ManagerConfig { mcts_iterations: 150, ..Default::default() },
    );
    let workload = Workload::from_ids([ModelId::AlexNet, ModelId::MobileNet]);
    let plan = manager.map(&workload, &PriorityMode::Dynamic);
    assert!(plan.mapping.validate(&workload, 3).is_ok());
}

#[test]
fn analytical_and_event_agree_on_baseline_collapse() {
    let platform = Platform::orange_pi_5();
    let workload = Workload::from_ids([
        ModelId::SqueezeNetV2,
        ModelId::InceptionV4,
        ModelId::ResNet50,
        ModelId::Vgg16,
    ]);
    let uniform = Mapping::uniform(&workload, ComponentId::new(0));
    let a = AnalyticalEngine::new(&platform).evaluate(&workload, &uniform).average();
    let e = EventEngine::quick(&platform).evaluate(&workload, &uniform).average();
    // Both engines agree the GPU pileup is bad (≤ a few inf/s on average).
    assert!(a < 3.0, "analytical baseline too optimistic: {a}");
    assert!(e < 3.0, "event baseline too optimistic: {e}");
}
